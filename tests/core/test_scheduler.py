"""Unit tests for the pro-active BML scheduler."""

import numpy as np
import pytest

from repro.core.combination import Combination
from repro.core.prediction import LookAheadMaxPredictor, PerfectPredictor
from repro.core.profiles import TABLE_I
from repro.core.scheduler import BMLScheduler
from repro.workload.trace import LoadTrace

P = TABLE_I["paravance"]
C = TABLE_I["chromebook"]
R = TABLE_I["raspberry"]


def trace_of(values):
    return LoadTrace(np.asarray(values, dtype=float))


class TestSteadyState:
    def test_constant_load_never_reconfigures(self, infra):
        plan = BMLScheduler(infra).plan(trace_of([100.0] * 2000))
        assert plan.n_reconfigurations == 0
        assert len(plan.segments) == 1

    def test_initial_combination_matches_first_prediction(self, infra):
        plan = BMLScheduler(infra).plan(trace_of([100.0] * 100))
        assert plan.initial == infra.combination_for(100.0)

    def test_fluctuation_within_same_combination_ignored(self, infra):
        # 28 and 33 req/s both need exactly one chromebook
        values = [28.0, 33.0] * 500
        plan = BMLScheduler(infra, predictor=PerfectPredictor()).plan(
            trace_of(values)
        )
        assert plan.n_reconfigurations == 0


class TestStepChanges:
    def test_step_up_decided_window_early(self, infra):
        # load jumps from 5 to 1000 at t=1000; with a 378 s look-ahead the
        # decision must fire at t = 1000 - 378 + 1 = 623.
        values = [5.0] * 1000 + [1000.0] * 1000
        sched = BMLScheduler(infra, predictor=LookAheadMaxPredictor(378))
        plan = sched.plan(trace_of(values))
        assert plan.n_reconfigurations == 1
        recon = plan.reconfigurations[0]
        assert recon.decided_at == 623
        # the new big machine is ready before the step arrives
        assert recon.decided_at + recon.boot_duration <= 1000

    def test_step_down_decided_at_the_step(self, infra):
        values = [1000.0] * 1000 + [5.0] * 1000
        sched = BMLScheduler(infra, predictor=LookAheadMaxPredictor(378))
        plan = sched.plan(trace_of(values))
        assert plan.n_reconfigurations == 1
        # look-ahead max stays at 1000 until the window no longer sees it
        assert plan.reconfigurations[0].decided_at == 1000

    def test_no_decisions_inside_blocking_window(self, infra):
        rng = np.random.default_rng(0)
        values = rng.uniform(1.0, 2000.0, size=5000)
        plan = BMLScheduler(infra).plan(trace_of(values))
        for a, b in zip(plan.reconfigurations[:-1], plan.reconfigurations[1:]):
            assert b.decided_at >= a.completes_at

    def test_spike_shorter_than_window_still_provisioned(self, infra):
        values = [5.0] * 2000
        values[1500] = 800.0  # 1-second spike
        plan = BMLScheduler(infra, predictor=LookAheadMaxPredictor(378)).plan(
            trace_of(values)
        )
        ups = [r for r in plan.reconfigurations if r.after.count_of("paravance")]
        assert ups, "the spike must trigger a Big boot"
        assert ups[0].decided_at == 1500 - 378 + 1


class TestExplicitInitial:
    def test_initial_differs_forces_immediate_decision(self, infra):
        initial = Combination.of({P: 2})
        sched = BMLScheduler(infra, initial=initial)
        plan = sched.plan(trace_of([50.0] * 3000))
        assert plan.initial == initial
        assert plan.n_reconfigurations == 1
        assert plan.reconfigurations[0].decided_at == 0

    def test_initial_equal_no_decision(self, infra):
        initial = infra.combination_for(50.0)
        plan = BMLScheduler(infra, initial=initial).plan(trace_of([50.0] * 100))
        assert plan.n_reconfigurations == 0


class TestPlanDetails:
    def test_outcome_exposes_predictions_and_table(self, infra, short_trace):
        out = BMLScheduler(infra).plan_detailed(short_trace)
        assert len(out.predictions) == len(short_trace)
        assert out.table.max_rate >= short_trace.peak
        assert out.plan.horizon == len(short_trace)

    def test_plan_serves_every_prediction_at_decision(self, infra, short_trace):
        out = BMLScheduler(infra).plan_detailed(short_trace)
        for r in out.plan.reconfigurations:
            assert r.after.capacity >= out.predictions[r.decided_at] - 1e-9

    def test_ideal_method_uses_fewer_or_equal_energy_tables(self, infra, short_trace):
        greedy_plan = BMLScheduler(infra, method="greedy").plan(short_trace)
        ideal_plan = BMLScheduler(infra, method="ideal").plan(short_trace)
        assert ideal_plan.horizon == greedy_plan.horizon


class TestWindowSizes:
    @pytest.mark.parametrize("window", [1, 60, 378, 1000])
    def test_plans_valid_for_any_window(self, infra, short_trace, window):
        plan = BMLScheduler(
            infra, predictor=LookAheadMaxPredictor(window)
        ).plan(short_trace)
        t = 0
        for seg in plan.segments:
            assert seg.t_start == t
            t = seg.t_end
        assert t == len(short_trace)

    def test_larger_windows_do_not_decide_later_on_rises(self, infra):
        values = [5.0] * 1500 + [1200.0] * 1500
        t_small = BMLScheduler(
            infra, predictor=LookAheadMaxPredictor(60)
        ).plan(trace_of(values)).reconfigurations[0].decided_at
        t_large = BMLScheduler(
            infra, predictor=LookAheadMaxPredictor(600)
        ).plan(trace_of(values)).reconfigurations[0].decided_at
        assert t_large <= t_small


class TestInventory:
    def test_capacity_clamped_and_qos_measured(self, infra):
        from repro.sim.datacenter import execute_plan

        values = np.concatenate([np.full(1000, 100.0), np.full(1000, 3000.0)])
        trace = trace_of(values)
        inventory = {"paravance": 1, "chromebook": 5, "raspberry": 5}
        sched = BMLScheduler(infra, inventory=inventory)
        plan = sched.plan(trace)
        for seg in plan.segments:
            for name, cap in inventory.items():
                assert seg.serving.count_of(name) <= cap
        res = execute_plan(plan, trace)
        assert res.qos().violation_seconds >= 900  # the plateau is unservable

    def test_generous_inventory_equals_unbounded(self, infra, short_trace):
        generous = {"paravance": 100, "chromebook": 1000, "raspberry": 1000}
        a = BMLScheduler(infra).plan(short_trace)
        b = BMLScheduler(infra, inventory=generous).plan(short_trace)
        assert a.n_reconfigurations == b.n_reconfigurations
        assert a.final == b.final


class TestTableCache:
    """Repeated plan() calls must reuse the infrastructure's table cache."""

    def _fresh_infra(self):
        from repro.core.bml import design
        from repro.core.profiles import table_i_profiles

        return design(table_i_profiles())

    def test_repeated_plan_hits_cache(self, short_trace):
        infra = self._fresh_infra()
        sched = BMLScheduler(infra)
        out1 = sched.plan_detailed(short_trace)
        assert infra.table_cache_misses == 1
        out2 = sched.plan_detailed(short_trace)
        # Second call: zero table-construction work, same table object.
        assert infra.table_cache_misses == 1
        assert infra.table_cache_hits >= 1
        assert out2.table is out1.table
        assert out1.plan.final == out2.plan.final

    def test_repeated_inventory_plan_hits_cache(self, short_trace):
        infra = self._fresh_infra()
        inventory = {"paravance": 4, "chromebook": 50, "raspberry": 50}
        sched = BMLScheduler(infra, inventory=inventory)
        sched.plan(short_trace)
        misses = infra.table_cache_misses
        sched.plan(short_trace)
        assert infra.table_cache_misses == misses
        assert infra.table_cache_hits >= 1

    def test_repeated_app_spec_plan_hits_cache(self, short_trace):
        from repro.sim.application import ApplicationSpec

        infra = self._fresh_infra()
        spec = ApplicationSpec(min_instances=2)
        sched = BMLScheduler(infra, app_spec=spec)
        plan1 = sched.plan(short_trace)
        misses = infra.table_cache_misses
        plan2 = sched.plan(short_trace)
        assert infra.table_cache_misses == misses
        assert infra.table_cache_hits >= 1
        assert plan1.final == plan2.final
        for seg in plan2.segments:
            assert not seg.serving or seg.serving.total_nodes >= 2

    def test_smaller_trace_reuses_larger_table(self, short_trace):
        infra = self._fresh_infra()
        sched = BMLScheduler(infra)
        sched.plan(short_trace)
        misses = infra.table_cache_misses
        sched.plan(short_trace[: len(short_trace) // 2])
        assert infra.table_cache_misses == misses  # monotone reuse


class TestRowIds:
    def test_row_ids_change_points_match_unique(self, infra, short_trace):
        from repro.core.scheduler import _row_ids

        table = infra.table(float(short_trace.peak))
        counts = table.counts_for(short_trace.values)
        ids = _row_ids(counts)
        _, ref = np.unique(counts, axis=0, return_inverse=True)
        ref = ref.reshape(-1)
        assert np.array_equal(
            np.flatnonzero(ids[1:] != ids[:-1]),
            np.flatnonzero(ref[1:] != ref[:-1]),
        )
