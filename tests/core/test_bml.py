"""Unit tests for the design facade (Steps 1-5 wired together)."""

import numpy as np
import pytest

from repro.core.bml import design
from repro.core.profiles import (
    ArchitectureProfile,
    ProfileError,
    illustrative_profiles,
    table_i_profiles,
)


class TestDesignTableI:
    def test_survivors_and_roles(self, infra):
        assert infra.names == ("paravance", "chromebook", "raspberry")
        assert infra.roles == {
            "paravance": "Big",
            "chromebook": "Medium",
            "raspberry": "Little",
        }

    def test_published_thresholds(self, infra):
        assert infra.thresholds == {
            "paravance": 529.0,
            "chromebook": 10.0,
            "raspberry": 1.0,
        }

    def test_removed_reasons(self, infra):
        assert "dominated by paravance" in infra.removed["taurus"]
        assert "step3" in infra.removed["graphene"]

    def test_big_and_little_accessors(self, infra):
        assert infra.big.name == "paravance"
        assert infra.little.name == "raspberry"

    def test_profile_lookup(self, infra):
        assert infra.profile("chromebook").max_perf == 33.0
        with pytest.raises(ProfileError):
            infra.profile("taurus")

    def test_describe_mentions_everything(self, infra):
        text = infra.describe()
        for name in ("paravance", "chromebook", "raspberry", "taurus", "graphene"):
            assert name in text


class TestDesignIllustrative:
    def test_step4_raises_big_threshold(self, infra_abc):
        assert infra_abc.thresholds["A"] > infra_abc.step3_thresholds["A"]
        assert infra_abc.step3_thresholds["A"] == 151.0

    def test_medium_threshold_around_150(self, infra_abc):
        assert infra_abc.thresholds["B"] == 150.0


class TestCombinations:
    def test_greedy_and_ideal_methods(self, infra):
        g = infra.combination_for(1400.0)
        i = infra.combination_for(1400.0, method="ideal")
        assert g.capacity >= 1400 and i.capacity >= 1400
        assert i.power(1400.0) <= g.power(1400.0) + 1e-9

    def test_unknown_method_rejected(self, infra):
        with pytest.raises(ValueError):
            infra.combination_for(10.0, method="nope")

    def test_table_cached(self, infra):
        t1 = infra.table(500.0)
        t2 = infra.table(500.0)
        assert t1 is t2
        assert infra.table(500.0, method="ideal") is not t1

    def test_table_cache_counts_hits_and_misses(self):
        from repro.core.bml import design
        from repro.core.profiles import table_i_profiles

        infra = design(table_i_profiles())
        assert infra.table_cache_misses == 0 and infra.table_cache_hits == 0
        infra.table(500.0)
        assert infra.table_cache_misses == 1
        infra.table(500.0)
        assert infra.table_cache_hits == 1

    def test_table_monotone_reuse_serves_smaller_requests(self):
        from repro.core.bml import design
        from repro.core.profiles import table_i_profiles

        infra = design(table_i_profiles())
        big = infra.table(4000.0)
        misses = infra.table_cache_misses
        small = infra.table(1200.0)
        assert infra.table_cache_misses == misses  # no rebuild
        assert small.max_rate == 1200.0
        # the view shares the backing table's arrays (zero-copy slice)
        assert np.shares_memory(small._power, big._power)
        assert np.array_equal(small.power_array, big.power_array[:1201])

    def test_table_cache_keys_inventory_separately(self):
        from repro.core.bml import design
        from repro.core.profiles import table_i_profiles

        infra = design(table_i_profiles())
        plain = infra.table(100.0)
        inv = {"paravance": 0, "chromebook": 4, "raspberry": 50}
        bounded = infra.table(100.0, inventory=inv)
        assert bounded is not plain
        assert bounded.combination_for(100.0).count_of("paravance") == 0
        assert infra.table(100.0, inventory=dict(inv)) is bounded  # key by value


class TestCurves:
    def test_power_curve_matches_combination_power(self, infra):
        rates = np.array([0.0, 5.0, 100.0, 529.0, 1331.0])
        curve = infra.power_curve(rates)
        for r, pw in zip(rates, curve):
            combo = infra.combination_for(float(np.ceil(r)))
            assert pw == pytest.approx(combo.power(float(np.ceil(r))))

    def test_ideal_curve_never_above_greedy(self, infra):
        rates = np.arange(0.0, 1332.0, 17.0)
        assert np.all(
            infra.ideal_power_curve(rates) <= infra.power_curve(rates) + 1e-9
        )

    def test_bml_linear_endpoints(self, infra):
        assert infra.bml_linear_power(0.0) == pytest.approx(3.1)
        assert infra.bml_linear_power(1331.0) == pytest.approx(200.5)

    def test_bml_linear_vectorised(self, infra):
        out = infra.bml_linear_power(np.array([0.0, 1331.0]))
        assert np.allclose(out, [3.1, 200.5])

    def test_combination_curve_tracks_linear_goal(self, infra):
        """Fig. 4's qualitative claim: the BML combination never exceeds the
        Big-only profile and tracks the BML-linear goal far closer than the
        Big-only curve does."""
        rates = np.arange(1.0, 1332.0)
        bml = infra.power_curve(rates)
        linear = infra.bml_linear_power(rates)
        big = np.asarray(infra.big.stack_power(rates))
        assert np.all(bml <= big + 1e-9)
        bml_gap = float(np.mean(np.abs(bml - linear)))
        big_gap = float(np.mean(np.abs(big - linear)))
        # the jump at the 529 req/s threshold keeps the average gap
        # substantial (visible in Fig. 4), but BML clearly improves on Big
        assert bml_gap < 0.7 * big_gap
        # and the curve meets the goal at both ends of the range
        assert bml[0] == pytest.approx(linear[0], abs=0.1)
        assert bml[-1] == pytest.approx(linear[-1], abs=0.1)


class TestValidation:
    def test_resolution_must_be_positive(self):
        with pytest.raises(ProfileError):
            design(table_i_profiles(), resolution=0.0)

    def test_single_architecture_designs(self):
        only = [table_i_profiles()[0]]
        infra = design(only)
        assert infra.names == ("paravance",)
        assert infra.thresholds == {"paravance": 1.0}
        assert infra.roles == {"paravance": "Big"}

    def test_two_identical_performance_profiles(self):
        a = ArchitectureProfile(name="a", max_perf=100, idle_power=5, max_power=20)
        b = ArchitectureProfile(name="b", max_perf=100, idle_power=8, max_power=30)
        infra = design([a, b])
        # b is dominated (same perf, more power)
        assert infra.names == ("a",)
