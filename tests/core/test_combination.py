"""Unit tests for combinations: Step 5 greedy, exact DP, tables."""

import itertools

import numpy as np
import pytest

from repro.core.combination import (
    Combination,
    CombinationError,
    CombinationTable,
    build_table,
    greedy_combination,
    ideal_combination,
    ideal_table,
)
from repro.core.profiles import TABLE_I, ArchitectureProfile


@pytest.fixture(scope="module")
def trio():
    return (TABLE_I["paravance"], TABLE_I["chromebook"], TABLE_I["raspberry"])


@pytest.fixture(scope="module")
def thresholds():
    return {"paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0}


class TestCombinationBasics:
    def test_normalisation_sorts_and_drops_zeros(self, trio):
        p, c, r = trio
        combo = Combination(((r, 1), (p, 2), (c, 0)))
        assert [x.name for x in combo.profiles] == ["paravance", "raspberry"]
        assert combo.counts == {"paravance": 2, "raspberry": 1}

    def test_equality_ignores_order(self, trio):
        p, c, _ = trio
        assert Combination(((p, 1), (c, 2))) == Combination(((c, 2), (p, 1)))

    def test_rejects_negative_counts(self, trio):
        with pytest.raises(CombinationError):
            Combination(((trio[0], -1),))

    def test_empty(self):
        e = Combination.empty()
        assert not e
        assert e.capacity == 0 and e.total_nodes == 0 and e.idle_power == 0

    def test_capacity_and_node_count(self, trio):
        p, c, r = trio
        combo = Combination.of({p: 1, c: 2, r: 1})
        assert combo.capacity == 1331 + 66 + 9
        assert combo.total_nodes == 4

    def test_idle_and_peak_power(self, trio):
        p, c, r = trio
        combo = Combination.of({p: 1, c: 2})
        assert combo.idle_power == pytest.approx(69.9 + 8.0)
        assert combo.peak_power == pytest.approx(200.5 + 15.2)

    def test_count_of_absent_is_zero(self, trio):
        combo = Combination.of({trio[0]: 1})
        assert combo.count_of("raspberry") == 0

    def test_describe(self, trio):
        p, _, r = trio
        assert Combination.of({p: 2, r: 1}).describe() == "2xparavance + 1xraspberry"
        assert Combination.empty().describe() == "(empty)"


class TestCombinationPower:
    def test_power_at_zero_is_idle(self, trio):
        combo = Combination.of({trio[0]: 1, trio[2]: 1})
        assert combo.power(0.0) == pytest.approx(69.9 + 3.1)

    def test_power_at_capacity_is_peak(self, trio):
        combo = Combination.of({trio[0]: 1, trio[2]: 1})
        assert combo.power(combo.capacity) == pytest.approx(200.5 + 3.7)

    def test_power_fills_cheapest_slope_first(self, trio):
        p, _, r = trio
        combo = Combination.of({p: 1, r: 1})
        # raspberry slope (0.0667) < paravance slope (0.0981): 9 units go to
        # the raspberry first.
        expected = 69.9 + 3.1 + r.slope * 9.0
        assert combo.power(9.0) == pytest.approx(expected)

    def test_power_rejects_beyond_capacity(self, trio):
        combo = Combination.of({trio[2]: 1})
        with pytest.raises(CombinationError):
            combo.power(10.0)

    def test_power_rejects_negative(self, trio):
        with pytest.raises(CombinationError):
            Combination.of({trio[2]: 1}).power(-1.0)

    def test_canonical_at_least_optimal(self, trio):
        p, c, r = trio
        combo = Combination.of({p: 1, c: 2, r: 1})
        for rate in (0.0, 5.0, 100.0, 1000.0, combo.capacity):
            assert combo.power_canonical(rate) >= combo.power(rate) - 1e-9

    def test_canonical_fills_big_first(self, trio):
        p, _, r = trio
        combo = Combination.of({p: 1, r: 1})
        # canonical assignment: all 500 units on the big node
        assert combo.power_canonical(500.0) == pytest.approx(
            69.9 + p.slope * 500.0 + 3.1
        )


class TestCombinationAlgebra:
    def test_diff(self, trio):
        p, c, r = trio
        a = Combination.of({p: 1, c: 2})
        b = Combination.of({p: 2, r: 1})
        assert a.diff(b) == {"paravance": 1, "chromebook": -2, "raspberry": 1}

    def test_diff_identical_is_empty(self, trio):
        a = Combination.of({trio[0]: 1})
        assert a.diff(a) == {}

    def test_union_max(self, trio):
        p, c, r = trio
        a = Combination.of({p: 1, c: 2})
        b = Combination.of({c: 1, r: 3})
        u = a.union_max(b)
        assert u.counts == {"paravance": 1, "chromebook": 2, "raspberry": 3}


class TestGreedy:
    def test_zero_rate_is_empty(self, trio, thresholds):
        assert greedy_combination(0.0, trio, thresholds) == Combination.empty()

    def test_tiny_rate_uses_one_little(self, trio, thresholds):
        combo = greedy_combination(3.0, trio, thresholds)
        assert combo.counts == {"raspberry": 1}

    def test_rate_at_medium_threshold_switches(self, trio, thresholds):
        assert greedy_combination(9.0, trio, thresholds).counts == {"raspberry": 1}
        assert greedy_combination(10.0, trio, thresholds).counts == {"chromebook": 1}

    def test_rate_at_big_threshold_switches(self, trio, thresholds):
        below = greedy_combination(528.0, trio, thresholds)
        at = greedy_combination(529.0, trio, thresholds)
        assert "paravance" not in below.counts
        assert at.counts == {"paravance": 1}

    def test_paper_style_mixed_combination(self, trio, thresholds):
        combo = greedy_combination(1400.0, trio, thresholds)
        assert combo.counts == {"paravance": 1, "chromebook": 2, "raspberry": 1}

    def test_fills_full_bigs_first(self, trio, thresholds):
        combo = greedy_combination(4000.0, trio, thresholds)
        assert combo.counts["paravance"] == 3  # 3993 capacity + remainder
        assert combo.capacity >= 4000.0

    def test_exact_multiple_of_big(self, trio, thresholds):
        combo = greedy_combination(2662.0, trio, thresholds)
        assert combo.counts == {"paravance": 2}

    def test_capacity_always_covers_rate(self, trio, thresholds):
        for rate in (1, 9, 10, 33, 34, 529, 1331, 1332, 5000):
            combo = greedy_combination(float(rate), trio, thresholds)
            assert combo.capacity >= rate

    def test_rejects_negative(self, trio, thresholds):
        with pytest.raises(CombinationError):
            greedy_combination(-1.0, trio, thresholds)

    def test_rejects_empty_architectures(self, thresholds):
        with pytest.raises(CombinationError):
            greedy_combination(5.0, [], thresholds)


class TestIdealDP:
    def test_matches_brute_force_small(self):
        a = ArchitectureProfile(name="a", max_perf=7, idle_power=3, max_power=9)
        b = ArchitectureProfile(name="b", max_perf=3, idle_power=1, max_power=4)
        tbl = ideal_table([a, b], 30.0)
        for rate in range(1, 31):
            best = float("inf")
            for na, nb in itertools.product(range(6), range(12)):
                combo = Combination.of({a: na, b: nb})
                if combo.capacity >= rate:
                    best = min(best, combo.power(rate))
            assert tbl[rate] == pytest.approx(best)

    def test_table_monotone_nondecreasing(self, trio):
        tbl = ideal_table(trio, 2000.0)
        assert np.all(np.diff(tbl) >= -1e-9)

    def test_zero_rate_costs_nothing(self, trio):
        assert ideal_table(trio, 10.0)[0] == 0.0

    def test_ideal_combination_backtracks_consistently(self, trio):
        for rate in (1.0, 10.0, 529.0, 1400.0, 3000.0):
            combo = ideal_combination(rate, trio)
            assert combo.capacity >= rate
            tbl = ideal_table(trio, rate)
            assert combo.power(rate) == pytest.approx(tbl[int(np.ceil(rate))])

    def test_ideal_never_above_greedy(self, trio, thresholds):
        tbl = ideal_table(trio, 1500.0)
        for rate in range(0, 1501, 7):
            greedy = greedy_combination(float(rate), trio, thresholds)
            assert tbl[rate] <= greedy.power(float(rate)) + 1e-9

    def test_resolution_too_coarse_rejected(self, trio):
        with pytest.raises(CombinationError):
            ideal_table(trio, 100.0, resolution=50.0)  # raspberry cap < grid


class TestTables:
    def test_greedy_table_matches_direct_calls(self, trio, thresholds):
        table = build_table(trio, thresholds, 200.0)
        for rate in (0.0, 1.0, 9.5, 33.0, 150.0, 200.0):
            assert table.combination_for(rate) == greedy_combination(
                float(np.ceil(rate)), trio, thresholds
            )

    def test_power_for_vectorised(self, trio, thresholds):
        table = build_table(trio, thresholds, 100.0)
        rates = np.array([0.0, 5.0, 50.0, 100.0])
        powers = table.power_for(rates)
        assert powers.shape == rates.shape
        for r, pw in zip(rates, powers):
            assert pw == pytest.approx(table.power_for(float(r)))

    def test_rates_round_up_to_grid(self, trio, thresholds):
        table = build_table(trio, thresholds, 100.0)
        assert table.combination_for(8.2) == table.combination_for(9.0)

    def test_rejects_rates_beyond_max(self, trio, thresholds):
        table = build_table(trio, thresholds, 100.0)
        with pytest.raises(CombinationError):
            table.power_for(101.0)

    def test_counts_array_shape(self, trio, thresholds):
        table = build_table(trio, thresholds, 50.0)
        assert table.counts_array.shape == (51, 3)
        assert table.counts_for(50.0).tolist() == [
            table.combination_for(50.0).count_of(p.name) for p in trio
        ]

    def test_ideal_table_combinations_are_optimal(self, trio, thresholds):
        table = build_table(trio, thresholds, 300.0, method="ideal")
        tbl = ideal_table(trio, 300.0)
        for rate in range(0, 301, 13):
            assert table.power_for(float(rate)) == pytest.approx(tbl[rate])

    def test_unknown_method_rejected(self, trio, thresholds):
        with pytest.raises(CombinationError):
            build_table(trio, thresholds, 10.0, method="magic")

    def test_len_and_max_rate(self, trio, thresholds):
        table = build_table(trio, thresholds, 100.0)
        assert len(table) == 101
        assert table.max_rate == 100.0


class TestBoundedGreedy:
    def _infra(self):
        from repro.core.bml import design
        from repro.core.profiles import table_i_profiles

        return design(table_i_profiles())

    def test_unbounded_inventory_matches_plain_greedy(self, trio, thresholds):
        from repro.core.combination import greedy_combination_bounded

        inv = {"paravance": 10**6, "chromebook": 10**6, "raspberry": 10**6}
        for rate in (0.0, 5.0, 100.0, 529.0, 1400.0, 4000.0):
            assert greedy_combination_bounded(
                rate, trio, thresholds, inv
            ) == greedy_combination(rate, trio, thresholds)

    def test_caps_respected(self, trio, thresholds):
        from repro.core.combination import greedy_combination_bounded

        inv = {"paravance": 1, "chromebook": 3, "raspberry": 2}
        combo = greedy_combination_bounded(1440.0, trio, thresholds, inv)
        for name, cap in inv.items():
            assert combo.count_of(name) <= cap
        assert combo.capacity >= 1440.0

    def test_cascades_to_bigger_when_littles_exhausted(self, trio, thresholds):
        from repro.core.combination import greedy_combination_bounded

        # remainder of 5 would prefer one raspberry, but none exist
        inv = {"paravance": 2, "chromebook": 0, "raspberry": 0}
        combo = greedy_combination_bounded(1336.0, trio, thresholds, inv)
        assert combo.counts == {"paravance": 2}

    def test_infeasible_rate_raises(self, trio, thresholds):
        from repro.core.combination import CombinationError, greedy_combination_bounded

        inv = {"paravance": 1, "chromebook": 0, "raspberry": 0}
        with pytest.raises(CombinationError):
            greedy_combination_bounded(1500.0, trio, thresholds, inv)

    def test_zero_rate_empty(self, trio, thresholds):
        from repro.core.combination import greedy_combination_bounded

        assert (
            greedy_combination_bounded(0.0, trio, thresholds, {}).total_nodes == 0
        )

    def test_bounded_table(self, trio, thresholds):
        inv = {"paravance": 0, "chromebook": 5, "raspberry": 5}
        table = build_table(trio, thresholds, 150.0, inventory=inv)
        assert table.combination_for(150.0).count_of("paravance") == 0

    def test_ideal_method_rejects_inventory(self, trio, thresholds):
        with pytest.raises(CombinationError):
            build_table(trio, thresholds, 10.0, method="ideal", inventory={})
