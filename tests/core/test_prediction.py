"""Unit tests for load predictors."""

import numpy as np
import pytest

from repro.core.prediction import (
    EWMAPredictor,
    LookAheadMaxPredictor,
    NoisyPredictor,
    PerfectPredictor,
    TrailingMaxPredictor,
    paper_window,
)
from repro.core.profiles import table_i_profiles
from repro.workload.trace import LoadTrace


@pytest.fixture()
def sawtooth():
    return np.array([0.0, 1, 2, 3, 4, 5, 4, 3, 2, 1, 0, 9, 0, 0], dtype=float)


class TestPaperWindow:
    def test_table_i_gives_378(self):
        assert paper_window(table_i_profiles()) == 378

    def test_custom_factor(self):
        assert paper_window(table_i_profiles(), factor=1.0) == 189


class TestLookAheadMax:
    def test_window_one_is_identity(self, sawtooth):
        assert np.array_equal(LookAheadMaxPredictor(1).series(sawtooth), sawtooth)

    def test_sees_upcoming_peak(self, sawtooth):
        pred = LookAheadMaxPredictor(3).series(sawtooth)
        # index 9 sees values [1, 0, 9] -> 9
        assert pred[9] == 9.0
        # index 8 sees [2, 1, 0] -> 2
        assert pred[8] == 2.0

    def test_matches_naive_definition(self, sawtooth):
        w = 4
        pred = LookAheadMaxPredictor(w).series(sawtooth)
        naive = [sawtooth[t : t + w].max() for t in range(len(sawtooth))]
        assert np.allclose(pred, naive)

    def test_accepts_loadtrace(self, sawtooth):
        trace = LoadTrace(sawtooth)
        assert np.array_equal(
            LookAheadMaxPredictor(2).series(trace),
            LookAheadMaxPredictor(2).series(sawtooth),
        )

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LookAheadMaxPredictor(0)

    def test_never_below_actual_load(self, sawtooth):
        pred = LookAheadMaxPredictor(5).series(sawtooth)
        assert np.all(pred >= sawtooth)


class TestPerfect:
    def test_is_identity(self, sawtooth):
        assert np.array_equal(PerfectPredictor().series(sawtooth), sawtooth)

    def test_returns_copy(self, sawtooth):
        out = PerfectPredictor().series(sawtooth)
        out[0] = 99.0
        assert sawtooth[0] == 0.0


class TestTrailingMax:
    def test_matches_naive_definition(self, sawtooth):
        w = 3
        pred = TrailingMaxPredictor(w).series(sawtooth)
        naive = [sawtooth[max(0, t - w + 1) : t + 1].max() for t in range(len(sawtooth))]
        assert np.allclose(pred, naive)

    def test_lags_rising_edges(self, sawtooth):
        pred = TrailingMaxPredictor(3).series(sawtooth)
        # at the spike (index 11) the trailing max includes it ...
        assert pred[11] == 9.0
        # ... but just before it does not (no oracle)
        assert pred[10] < 9.0


class TestEWMA:
    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.5, headroom=0.0)

    def test_constant_load_converges_to_headroom(self):
        load = np.full(1000, 10.0)
        pred = EWMAPredictor(alpha=0.05, headroom=1.2).series(load)
        assert pred[-1] == pytest.approx(12.0, rel=1e-6)

    def test_prediction_uses_only_past(self):
        load = np.array([10.0] * 50 + [100.0])
        pred = EWMAPredictor(alpha=0.5, headroom=1.0).series(load)
        # the step at t=50 cannot influence the prediction made for t=50
        assert pred[50] == pytest.approx(10.0, rel=1e-6)

    def test_matches_python_recursion(self):
        rng = np.random.default_rng(5)
        load = rng.random(200) * 10
        a = 0.1
        pred = EWMAPredictor(alpha=a, headroom=1.0).series(load)
        acc = load[0]
        ref = [load[0]]
        for v in load[:-1]:
            acc = a * v + (1 - a) * acc
            ref.append(acc)
        assert np.allclose(pred, ref)


class TestNoisy:
    def test_deterministic_given_seed(self, sawtooth):
        a = NoisyPredictor(sigma=0.3, seed=7).series(sawtooth)
        b = NoisyPredictor(sigma=0.3, seed=7).series(sawtooth)
        assert np.array_equal(a, b)

    def test_zero_sigma_unit_bias_is_clean(self, sawtooth):
        clean = LookAheadMaxPredictor().series(sawtooth)
        noisy = NoisyPredictor(sigma=0.0, bias=1.0).series(sawtooth)
        assert np.array_equal(clean, noisy)

    def test_bias_scales(self, sawtooth):
        doubled = NoisyPredictor(sigma=0.0, bias=2.0).series(sawtooth)
        clean = LookAheadMaxPredictor().series(sawtooth)
        assert np.allclose(doubled, 2 * clean)

    def test_never_negative(self, sawtooth):
        pred = NoisyPredictor(sigma=2.0, seed=1).series(sawtooth)
        assert np.all(pred >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyPredictor(sigma=-0.1)
        with pytest.raises(ValueError):
            NoisyPredictor(bias=0.0)

    def test_name_mentions_base(self):
        p = NoisyPredictor(base=PerfectPredictor(), sigma=0.2)
        assert "perfect" in p.name


class TestPredictInterface:
    def test_predict_single_step(self, sawtooth):
        p = LookAheadMaxPredictor(3)
        assert p.predict(sawtooth, 9) == 9.0
