"""Unit tests for the upper/lower bound scenarios."""

import numpy as np
import pytest

from repro.core.baselines import (
    big_machines_needed,
    global_upper_bound_plan,
    per_day_upper_bound_plan,
)
from repro.core.profiles import TABLE_I
from repro.workload.trace import SECONDS_PER_DAY, LoadTrace

P = TABLE_I["paravance"]


class TestSizing:
    def test_exact_multiples(self):
        assert big_machines_needed(1331.0, P) == 1
        assert big_machines_needed(2662.0, P) == 2

    def test_rounds_up(self):
        assert big_machines_needed(1332.0, P) == 2
        assert big_machines_needed(1.0, P) == 1

    def test_zero_peak_needs_nothing(self):
        assert big_machines_needed(0.0, P) == 0

    def test_paper_sizing_four_bigs(self):
        # the paper's World Cup peak needs 4 Paravance machines
        assert big_machines_needed(5000.0, P) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            big_machines_needed(-1.0, P)


class TestGlobalUpperBound:
    def test_constant_plan_no_reconfigs(self):
        trace = LoadTrace(np.linspace(10, 5000, 1000))
        plan = global_upper_bound_plan(trace, P)
        assert plan.n_reconfigurations == 0
        assert len(plan.segments) == 1
        assert plan.initial.counts == {"paravance": 4}

    def test_capacity_covers_peak(self):
        trace = LoadTrace(np.array([10.0, 900.0, 4100.0]))
        plan = global_upper_bound_plan(trace, P)
        assert plan.initial.capacity >= trace.peak


class TestPerDayUpperBound:
    def _two_day_trace(self, peak1, peak2):
        day1 = np.full(SECONDS_PER_DAY, 10.0)
        day1[43200] = peak1
        day2 = np.full(SECONDS_PER_DAY, 10.0)
        day2[43200] = peak2
        return LoadTrace(np.concatenate([day1, day2]))

    def test_daily_resize(self):
        trace = self._two_day_trace(1000.0, 3000.0)
        plan = per_day_upper_bound_plan(trace, P)
        assert plan.initial.counts == {"paravance": 1}
        assert plan.n_reconfigurations == 1
        recon = plan.reconfigurations[0]
        assert recon.decided_at == SECONDS_PER_DAY
        assert recon.after.counts == {"paravance": 3}

    def test_no_resize_when_counts_equal(self):
        trace = self._two_day_trace(1000.0, 1200.0)
        plan = per_day_upper_bound_plan(trace, P)
        assert plan.n_reconfigurations == 0

    def test_min_servers_floor(self):
        trace = LoadTrace(np.full(2 * SECONDS_PER_DAY, 0.5))
        plan = per_day_upper_bound_plan(trace, P, min_servers=2)
        assert plan.initial.counts == {"paravance": 2}

    def test_switch_energy_charged(self):
        trace = self._two_day_trace(1000.0, 3000.0)
        plan = per_day_upper_bound_plan(trace, P)
        assert plan.total_switch_energy == pytest.approx(2 * P.on_energy)

    def test_partial_last_day_handled(self):
        values = np.full(SECONDS_PER_DAY + 7200, 100.0)
        values[-1] = 2000.0
        plan = per_day_upper_bound_plan(LoadTrace(values), P)
        assert plan.horizon == len(values)
        assert plan.final.counts == {"paravance": 2}
