"""Unit tests for Steps 3-4: crossing points and utilization thresholds."""

import pytest

from repro.core.crossing import (
    compute_thresholds,
    crossing_vs_ideal,
    crossing_vs_stack,
    step3_thresholds,
    step4_thresholds,
)
from repro.core.filtering import bml_candidates
from repro.core.profiles import (
    ArchitectureProfile,
    TABLE_I,
    illustrative_profiles,
    table_i_profiles,
)


class TestCrossingVsStack:
    def test_toy_crossing_exact(self, toy_profiles):
        big, little = toy_profiles
        # big(r) = 50 + 0.5 r meets 10 full littles exactly at r = 100
        assert crossing_vs_stack(big, little) == 100.0

    def test_chromebook_vs_raspberry_is_10(self):
        cross = crossing_vs_stack(TABLE_I["chromebook"], TABLE_I["raspberry"])
        assert cross == 10.0

    def test_paravance_vs_chromebook_is_529(self):
        cross = crossing_vs_stack(TABLE_I["paravance"], TABLE_I["chromebook"])
        assert cross == 529.0

    def test_graphene_never_crosses_chromebook(self):
        assert crossing_vs_stack(TABLE_I["graphene"], TABLE_I["chromebook"]) is None

    def test_tie_prefers_big(self):
        # big exactly equal to little stacks everywhere -> crossing at 1st grid
        big = ArchitectureProfile(name="b", max_perf=100, idle_power=0, max_power=100)
        little = ArchitectureProfile(name="l", max_perf=10, idle_power=0, max_power=10)
        assert crossing_vs_stack(big, little) == 1.0


class TestCrossingVsIdeal:
    def test_paravance_vs_mixed_still_529(self):
        cross = crossing_vs_ideal(
            TABLE_I["paravance"], [TABLE_I["chromebook"], TABLE_I["raspberry"]]
        )
        assert cross == 529.0

    def test_empty_smaller_set_gives_first_grid_rate(self):
        assert crossing_vs_ideal(TABLE_I["raspberry"], []) == 1.0

    def test_mixed_adversary_is_at_least_as_strong_as_stack(self, toy_profiles):
        big, little = toy_profiles
        vs_stack = crossing_vs_stack(big, little)
        vs_ideal = crossing_vs_ideal(big, [little])
        assert vs_ideal >= vs_stack  # mixing can only postpone the threshold


class TestStep3:
    def test_table_i_removes_graphene(self):
        kept, _ = bml_candidates(table_i_profiles()).kept, None
        kept3, thr, removed = step3_thresholds(list(bml_candidates(table_i_profiles()).kept))
        assert removed == {"graphene": "step3"}
        assert [p.name for p in kept3] == ["paravance", "chromebook", "raspberry"]
        assert thr == {"paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0}

    def test_illustrative_step3_threshold_at_medium_max_perf(self):
        kept = list(bml_candidates(illustrative_profiles()).kept)
        _, thr, removed = step3_thresholds(kept)
        assert removed == {}
        # the narrated "jump": Big's step-3 threshold right past Medium's
        # maximum performance rate (150)
        assert thr["A"] == 151.0
        assert thr["B"] == 150.0
        assert thr["C"] == 1.0

    def test_single_architecture(self):
        only = [TABLE_I["raspberry"]]
        kept, thr, removed = step3_thresholds(only)
        assert kept == only and removed == {}
        assert thr == {"raspberry": 1.0}


class TestStep4:
    def test_illustrative_step4_raises_big_threshold(self):
        kept = list(bml_candidates(illustrative_profiles()).kept)
        kept3, thr3, _ = step3_thresholds(kept)
        _, thr4, _ = step4_thresholds(kept3)
        assert thr4["A"] > thr3["A"]
        assert thr4["B"] == thr3["B"] == 150.0

    def test_table_i_thresholds_match_paper(self):
        kept = list(bml_candidates(table_i_profiles()).kept)
        kept3, _, _ = step3_thresholds(kept)
        _, thr, removed = step4_thresholds(kept3)
        assert removed == {}
        assert thr == {"paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0}


class TestReport:
    def test_full_report_table_i(self):
        report = compute_thresholds(list(bml_candidates(table_i_profiles()).kept))
        assert [p.name for p in report.kept] == [
            "paravance", "chromebook", "raspberry",
        ]
        assert report.thresholds["paravance"] == 529.0
        assert report.removed == {"graphene": "step3"}
        assert report.step3["paravance"] == 529.0

    def test_resolution_scales_little_threshold(self, toy_profiles):
        big, little = toy_profiles
        report = compute_thresholds([big, little], resolution=0.5)
        assert report.thresholds["little"] == 0.5


class TestSharedAdversaryTables:
    """Step 4's exact-DP adversary tables are shared across candidates."""

    def test_shared_tables_match_fresh_crossings(self):
        from repro.core.crossing import _SharedIdealTables, crossing_vs_ideal

        kept = list(bml_candidates(table_i_profiles()).kept)
        kept3, _, _ = step3_thresholds(kept)
        tables = _SharedIdealTables(1.0)
        for i, big in enumerate(kept3[:-1]):
            smaller = kept3[i + 1 :]
            assert crossing_vs_ideal(big, smaller, 1.0, tables) == crossing_vs_ideal(
                big, smaller, 1.0
            )

    def test_monotone_reuse_serves_slices(self):
        from repro.core.crossing import _SharedIdealTables

        import numpy as np

        from repro.core.combination import ideal_table

        tables = _SharedIdealTables(1.0)
        smaller = list(bml_candidates(table_i_profiles()).kept)[1:]
        big_view = tables.power(smaller, 500)
        small_view = tables.power(smaller, 100)
        assert tables.builds == 1 and tables.hits == 1
        assert len(small_view) == 101
        assert np.array_equal(small_view, big_view[:101])
        # prefix stability: the slice equals a fresh smaller build
        assert np.array_equal(small_view, ideal_table(smaller, 100.0, 1.0))
        # growth rebuilds once, then serves the old size as a slice again
        tables.power(smaller, 800)
        assert tables.builds == 2
        assert np.array_equal(tables.power(smaller, 500), big_view)

    def test_step4_shares_across_elimination(self, monkeypatch):
        """After an elimination the bigger candidate inherits the removed
        candidate's suffix; its DP table must be reused, not rebuilt."""
        import repro.core.crossing as crossing_mod

        calls = []
        real = crossing_mod.ideal_table

        def counting(profiles, max_rate, resolution=1.0):
            calls.append(tuple(p.name for p in profiles))
            return real(profiles, max_rate, resolution)

        monkeypatch.setattr(crossing_mod, "ideal_table", counting)
        kept = list(bml_candidates(table_i_profiles()).kept)
        kept3, _, _ = step3_thresholds(kept)
        _, thr, _ = step4_thresholds(kept3)
        assert thr == {"paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0}
        # one DP build per distinct survivor suffix, regardless of how many
        # candidates or passes query it
        assert len(calls) == len(set(calls))
