"""Unit tests for architecture profiles and power models (Step 1)."""

import numpy as np
import pytest

from repro.core.profiles import (
    ILLUSTRATIVE,
    TABLE_I,
    ArchitectureProfile,
    ProfileError,
    illustrative_profiles,
    table_i_profiles,
)


def make(name="x", max_perf=100.0, idle=10.0, mx=30.0, **kw):
    return ArchitectureProfile(
        name=name, max_perf=max_perf, idle_power=idle, max_power=mx, **kw
    )


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ProfileError):
            make(name="")

    def test_rejects_nonpositive_max_perf(self):
        with pytest.raises(ProfileError):
            make(max_perf=0.0)
        with pytest.raises(ProfileError):
            make(max_perf=-5.0)

    def test_rejects_negative_idle(self):
        with pytest.raises(ProfileError):
            make(idle=-1.0)

    def test_rejects_max_below_idle(self):
        with pytest.raises(ProfileError):
            make(idle=50.0, mx=40.0)

    def test_rejects_negative_switch_costs(self):
        for attr in ("on_time", "on_energy", "off_time", "off_energy"):
            with pytest.raises(ProfileError):
                make(**{attr: -1.0})

    def test_allows_zero_dynamic_range(self):
        prof = make(idle=20.0, mx=20.0)
        assert prof.slope == 0.0
        assert prof.power(50.0) == 20.0


class TestDerived:
    def test_dynamic_range_and_slope(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.dynamic_range == 20.0
        assert p.slope == pytest.approx(0.2)

    def test_full_load_efficiency(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.full_load_efficiency == pytest.approx(0.3)

    def test_boot_and_shutdown_power(self):
        p = make(on_time=10.0, on_energy=500.0, off_time=4.0, off_energy=100.0)
        assert p.boot_power == pytest.approx(50.0)
        assert p.shutdown_power == pytest.approx(25.0)

    def test_zero_transition_times_give_zero_power(self):
        p = make()
        assert p.boot_power == 0.0
        assert p.shutdown_power == 0.0

    def test_switching_totals(self):
        p = make(on_time=10.0, on_energy=500.0, off_time=4.0, off_energy=100.0)
        assert p.switching_energy == 600.0
        assert p.switching_time == 14.0


class TestSingleNodePower:
    def test_endpoints(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.power(0.0) == pytest.approx(10.0)
        assert p.power(100.0) == pytest.approx(30.0)

    def test_linear_midpoint(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.power(50.0) == pytest.approx(20.0)

    def test_vectorised(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        out = p.power(np.array([0.0, 50.0, 100.0]))
        assert np.allclose(out, [10.0, 20.0, 30.0])

    def test_rejects_out_of_range(self):
        p = make(max_perf=100.0)
        with pytest.raises(ProfileError):
            p.power(101.0)
        with pytest.raises(ProfileError):
            p.power(-1.0)


class TestNodesRequired:
    def test_zero_rate_needs_no_node(self):
        assert make(max_perf=100.0).nodes_required(0.0) == 0

    def test_exact_multiples(self):
        p = make(max_perf=100.0)
        assert p.nodes_required(100.0) == 1
        assert p.nodes_required(200.0) == 2

    def test_just_above_multiple(self):
        p = make(max_perf=100.0)
        assert p.nodes_required(100.0001) == 2

    def test_vectorised(self):
        p = make(max_perf=100.0)
        out = p.nodes_required(np.array([0.0, 1.0, 100.0, 150.0]))
        assert list(out) == [0, 1, 1, 2]

    def test_rejects_negative(self):
        with pytest.raises(ProfileError):
            make().nodes_required(-1.0)


class TestStackPower:
    def test_zero_rate_zero_nodes(self):
        assert make().stack_power(0.0) == 0.0

    def test_single_partial_node(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.stack_power(50.0) == pytest.approx(20.0)

    def test_full_plus_partial(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        # one full node (30 W) + one half-loaded node (20 W)
        assert p.stack_power(150.0) == pytest.approx(50.0)

    def test_exact_full_nodes(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.stack_power(200.0) == pytest.approx(60.0)

    def test_explicit_spare_nodes_idle(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        # 150 needs 2 nodes; a third node idles at 10 W
        assert p.stack_power(150.0, nodes=3) == pytest.approx(60.0)

    def test_explicit_nodes_zero_rate(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.stack_power(0.0, nodes=2) == pytest.approx(20.0)

    def test_rejects_insufficient_nodes(self):
        p = make(max_perf=100.0)
        with pytest.raises(ProfileError):
            p.stack_power(250.0, nodes=2)

    def test_vectorised_matches_scalar(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        rates = np.array([0.0, 10.0, 100.0, 110.0, 333.0])
        vec = p.stack_power(rates)
        assert np.allclose(vec, [p.stack_power(float(r)) for r in rates])


class TestComparisons:
    def test_dominates(self):
        fast = make(name="fast", max_perf=200.0, idle=10.0, mx=30.0)
        slow_hungry = make(name="s", max_perf=100.0, idle=10.0, mx=35.0)
        slow_frugal = make(name="f", max_perf=100.0, idle=1.0, mx=20.0)
        assert fast.dominates(slow_hungry)
        assert not fast.dominates(slow_frugal)
        assert not slow_hungry.dominates(fast)

    def test_dominates_requires_strictly_more_perf(self):
        a = make(name="a", max_perf=100.0, mx=30.0)
        b = make(name="b", max_perf=100.0, mx=40.0)
        assert not a.dominates(b)

    def test_scaled(self):
        p = make(max_perf=100.0)
        q = p.scaled(2.0, name="x2")
        assert q.max_perf == 200.0
        assert q.idle_power == p.idle_power
        with pytest.raises(ProfileError):
            p.scaled(0.0)


class TestRoundTrip:
    def test_dict_round_trip(self):
        p = TABLE_I["paravance"]
        assert ArchitectureProfile.from_dict(p.as_dict()) == p

    def test_energy_full_day(self):
        p = make(max_perf=100.0, idle=10.0, mx=30.0)
        assert p.energy_full_day(100.0) == pytest.approx(30.0 * 86400)


class TestPublishedConstants:
    def test_table_i_values(self):
        p = TABLE_I["paravance"]
        assert (p.max_perf, p.idle_power, p.max_power) == (1331.0, 69.9, 200.5)
        assert (p.on_time, p.on_energy) == (189.0, 21341.0)
        assert (p.off_time, p.off_energy) == (10.0, 657.0)
        r = TABLE_I["raspberry"]
        assert (r.max_perf, r.idle_power, r.max_power) == (9.0, 3.1, 3.7)

    def test_presentation_order(self):
        names = [p.name for p in table_i_profiles()]
        assert names == ["paravance", "taurus", "graphene", "chromebook", "raspberry"]

    def test_illustrative_set(self):
        names = [p.name for p in illustrative_profiles()]
        assert names == ["A", "B", "C", "D"]
        # D is built to be dominated by A (Fig. 1's removal).
        assert ILLUSTRATIVE["A"].dominates(ILLUSTRATIVE["D"])

    def test_all_published_profiles_are_consistent(self):
        for prof in list(TABLE_I.values()) + list(ILLUSTRATIVE.values()):
            assert prof.max_power >= prof.idle_power
            assert prof.max_perf > 0
