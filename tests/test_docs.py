"""Documentation consistency: the docs must not drift from the code."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDesignDoc:
    def test_design_exists_and_confirms_paper(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "CLUSTER 2016" in text
        assert "Villebonnet" in text

    def test_every_referenced_bench_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(test_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_every_referenced_module_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`(core|sim|workload|profiling|analysis)/(\w+)\.py`", text):
            rel = Path("src/repro") / match.group(1) / f"{match.group(2)}.py"
            assert (ROOT / rel).exists(), match.group(0)


class TestExperimentsDoc:
    def test_headline_numbers_present(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        # the paper's published statistics must be stated for comparison
        for published in ("32", "6.8", "161.4", "529", "1331"):
            assert published in text

    def test_every_referenced_bench_exists(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for match in re.finditer(r"benchmarks/(test_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)


class TestReadme:
    def test_quickstart_snippet_runs(self):
        """The README's core claims, executed."""
        import repro

        infra = repro.design(repro.table_i_profiles())
        assert infra.thresholds == {
            "paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0,
        }
        combo = infra.combination_for(1400)
        assert combo.describe() == "1xparavance + 2xchromebook + 1xraspberry"
        assert combo.power(1400) == pytest.approx(218.75, abs=0.01)

    def test_examples_table_matches_directory(self):
        text = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in text, f"{script.name} missing from README"


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.profiling
        import repro.sim
        import repro.workload

        for pkg in (
            repro.core, repro.sim, repro.workload, repro.profiling, repro.analysis
        ):
            for name in pkg.__all__:
                assert getattr(pkg, name, None) is not None, (pkg.__name__, name)
