"""Equivalence properties for the segment-compressed replay engine.

PR 2's contract, mirroring ``test_prop_vectorized.py``'s for the
combination kernels: the segment-compressed engine of
:class:`repro.sim.loop.EventDrivenReplay` (windowed load balancing, array
energy ledger, jump-to-boundary main loop) must be **bit-identical** to
the per-second FSM reference — power series, unserved series, per-machine
meter totals, reconfiguration log and machine-level counters — including
under nonzero instance start/stop times and both balancing strategies.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bml import design
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.profiles import table_i_profiles
from repro.core.scheduler import BMLScheduler
from repro.sim.application import ApplicationSpec
from repro.sim.energy import EnergyMeter
from repro.sim.loadbalancer import LoadBalancer
from repro.sim.loop import EventDrivenReplay
from repro.sim.powercap import capped_profile
from repro.workload.trace import LoadTrace

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick


@st.composite
def stepped_trace(draw):
    """Piecewise-constant load with jumps that force reconfigurations."""
    n_steps = draw(st.integers(2, 6))
    levels = draw(
        st.lists(
            st.floats(0.0, 2800.0, allow_nan=False, allow_infinity=False),
            min_size=n_steps,
            max_size=n_steps,
        )
    )
    durations = draw(
        st.lists(st.integers(30, 400), min_size=n_steps, max_size=n_steps)
    )
    noise_seed = draw(st.integers(0, 2**16))
    values = np.concatenate(
        [np.full(d, lv) for lv, d in zip(levels, durations)]
    )
    rng = np.random.default_rng(noise_seed)
    jitter = rng.uniform(0.0, 20.0, size=len(values))
    return LoadTrace(np.maximum(values + jitter, 0.0))


#: Every replay implementation; index 0 is the executable specification.
ALL_ENGINES = ("reference", "segments", "twophase")


def _run_pair(infra, trace, window, spec, strategy):
    table = infra.table(3000.0)
    results = []
    replays = []
    for engine in ALL_ENGINES:
        replay = EventDrivenReplay(
            table,
            trace,
            predictor=LookAheadMaxPredictor(window),
            app_spec=spec,
            balancer=LoadBalancer(strategy),
        )
        results.append(replay.run(engine=engine))
        replays.append(replay)
    return results, replays


def _assert_identical(ref, other, ref_replay, other_replay):
    """The full cross-engine bit-identity contract, one engine pair."""
    assert np.array_equal(ref.power, other.power)
    assert np.array_equal(ref.unserved, other.unserved)
    assert ref.meta["meter_energy_j"] == other.meta["meter_energy_j"]
    # per-machine ledgers, not just the total
    assert ref_replay.meter._totals == other_replay.meter._totals
    assert ref_replay.stats == other_replay.stats
    assert len(ref.reconfigurations) == len(other.reconfigurations)
    for a, b in zip(ref.reconfigurations, other.reconfigurations):
        assert a.decided_at == b.decided_at
        assert a.completes_at == b.completes_at
        assert a.before == b.before and a.after == b.after
        assert a.on_energy == b.on_energy
        assert a.off_energy == b.off_energy


class TestEngineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        stepped_trace(),
        st.integers(10, 400),
        st.sampled_from([(0.0, 0.0), (0.5, 0.5), (3.0, 2.5), (0.0, 7.0)]),
        st.sampled_from(["efficient", "proportional"]),
    )
    def test_bit_identical_to_reference(self, infra, trace, window, times, strategy):
        """Nonzero instance start/stop times included via ``times``."""
        stop, start = times
        spec = ApplicationSpec(stop_time=stop, start_time=start)
        results, replays = _run_pair(infra, trace, window, spec, strategy)
        ref, ref_replay = results[0], replays[0]
        for other, other_replay in zip(results[1:], replays[1:]):
            _assert_identical(ref, other, ref_replay, other_replay)

    def test_twophase_engine_is_default(self, infra, short_trace):
        replay = EventDrivenReplay(
            infra.table(3000.0),
            short_trace,
            predictor=LookAheadMaxPredictor(378),
        )
        result = replay.run()
        assert result.engine == "twophase"
        assert result.n_segments is not None
        # far fewer segments than seconds is the whole point
        assert result.n_segments < len(short_trace) / 20
        # batching groups the segments by frozen serving set
        assert result.meta["batches"] <= result.meta["serving_sets"]
        assert result.meta["serving_sets"] <= result.n_segments

    def test_meter_ledger_matches_power_integral(self, infra, short_trace):
        replay = EventDrivenReplay(
            infra.table(3000.0),
            short_trace,
            predictor=LookAheadMaxPredictor(378),
        )
        result = replay.run(engine="segments")
        assert result.meta["meter_energy_j"] == pytest.approx(
            result.total_energy, rel=1e-9
        )

    def test_cross_replay_kernel_reuse_stays_bit_identical(
        self, infra, short_trace
    ):
        """PR 5: serving-set kernels are cached process-wide; a second
        replay served entirely from warm kernels must reproduce the
        first (and the reference) exactly, and must actually hit."""
        from repro.sim.loadbalancer import serving_kernel_cache_stats

        def run(engine):
            return EventDrivenReplay(
                infra.table(3000.0),
                short_trace,
                predictor=LookAheadMaxPredictor(378),
            ).run(engine=engine)

        first = run("segments")
        before = serving_kernel_cache_stats()
        second = run("segments")
        after = serving_kernel_cache_stats()
        reference = run("reference")
        assert np.array_equal(first.power, second.power)
        assert np.array_equal(second.power, reference.power)
        assert np.array_equal(second.unserved, reference.unserved)
        assert second.meta["meter_energy_j"] == reference.meta["meter_energy_j"]
        assert after["table_cache_hits"] > before["table_cache_hits"]
        assert after["table_cache_misses"] == before["table_cache_misses"]


@lru_cache(maxsize=None)
def _capped_infra(frac: float):
    """BML infrastructure designed from power-capped Table I profiles.

    Same cap formula as ``ScenarioSpec.build_profiles``: the cap sits at
    ``idle + frac * (max - idle)`` of each machine's dynamic range.
    """
    profiles = [
        capped_profile(
            p, p.idle_power + frac * (p.max_power - p.idle_power)
        )
        for p in table_i_profiles()
    ]
    return design(profiles)


class TestTwoPhaseScenarios:
    """PR 6: the two-phase engine under the harder scenario shapes.

    The base equivalence property covers nonzero instance start/stop
    times; these pin the remaining ISSUE 6 scenario axes — power-capped
    profiles and bounded machine inventories — plus the control pass's
    purity (descriptor emission must not depend on evaluation running).
    """

    @settings(max_examples=10, deadline=None)
    @given(
        stepped_trace(),
        st.sampled_from([0.5, 0.7, 0.9]),
        st.sampled_from(["efficient", "proportional"]),
    )
    def test_powercap_bit_identical(self, trace, frac, strategy):
        infra = _capped_infra(frac)
        results, replays = _run_pair(
            infra, trace, 200,
            ApplicationSpec(stop_time=0.0, start_time=0.0), strategy,
        )
        ref, ref_replay = results[0], replays[0]
        for other, other_replay in zip(results[1:], replays[1:]):
            _assert_identical(ref, other, ref_replay, other_replay)

    @settings(max_examples=10, deadline=None)
    @given(
        stepped_trace(),
        st.sampled_from(
            [
                {"paravance": 1, "chromebook": 8, "raspberry": 8},
                {"paravance": 0, "chromebook": 12, "raspberry": 20},
            ]
        ),
    )
    def test_constrained_nodes_bit_identical(self, infra, trace, inventory):
        """Bounded inventory: clamped plans and unserved demand replay
        identically on all three engines (runner's exact construction)."""
        results = []
        replays = []
        for engine in ALL_ENGINES:
            predictor = LookAheadMaxPredictor(200)
            outcome = BMLScheduler(
                infra, predictor=predictor, inventory=inventory
            ).plan_detailed(trace)
            replay = EventDrivenReplay(
                outcome.table, trace,
                predictor=predictor, inventory=inventory,
            )
            results.append(replay.run(engine=engine))
            replays.append(replay)
        ref, ref_replay = results[0], replays[0]
        for other, other_replay in zip(results[1:], replays[1:]):
            _assert_identical(ref, other, ref_replay, other_replay)

    def test_control_pass_descriptors_independent_of_evaluation(
        self, infra, short_trace
    ):
        """Control-pass purity: the descriptor stream is byte-for-byte
        the same whether or not the evaluate pass (and meter settling)
        runs afterwards — the phase split's core regression guard."""
        def build():
            return EventDrivenReplay(
                infra.table(3000.0),
                short_trace,
                predictor=LookAheadMaxPredictor(378),
            )

        full = build()
        full.run(engine="twophase")
        evaluated = full._twophase_plan
        control_only = build()
        bare = control_only._control_pass()
        assert bare.descs == evaluated.descs
        assert bare.plans == evaluated.plans
        assert bare.compress == evaluated.compress
        assert bare.horizon == evaluated.horizon
        assert [k.machine_ids for k in bare.kernels] == [
            k.machine_ids for k in evaluated.kernels
        ]


class TestDeferredLedgerProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_record_gather_matches_per_second_set_power(self, data):
        """The PR 5 deferred gather ledger replays the scalar chain.

        Mirrors ``test_record_series_matches_per_second_set_power`` with
        the gather representation (unique values + inverse) and a few
        interleaved transitions, the exact call pattern of the segment
        engine's serving-set kernel path.
        """
        n_windows = data.draw(st.integers(1, 4))
        scalar = EnergyMeter()
        deferred = EnergyMeter()
        for meter in (scalar, deferred):
            meter.set_power("m", 17.5, 0.0)
        t = data.draw(st.integers(1, 50))
        for _ in range(n_windows):
            n = data.draw(st.integers(1, 30))
            powers = np.array(
                data.draw(
                    st.lists(
                        st.floats(0.0, 500.0, allow_nan=False),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
            for k, p in enumerate(powers):
                scalar.set_power("m", float(p), t + k)
            uniq, inverse = np.unique(powers, return_inverse=True)
            deferred.record_gather("m", uniq, inverse, t)
            t += n
            if data.draw(st.booleans()):  # a transition between windows
                power = data.draw(st.floats(0.0, 800.0, allow_nan=False))
                scalar.set_power("m", power, t)
                deferred.set_power("m", power, t)
                t += data.draw(st.integers(1, 5))
        scalar.finalize(t + 5)
        deferred.finalize(t + 5)
        assert scalar._totals == deferred._totals
        assert scalar.total_energy == deferred.total_energy


class TestStackedSettleProperty:
    """PR 9: the multi-machine stacked ledger settle.

    ``_flush_all`` settles every pending stream through one stacked 2-D
    cumsum (or a buffer-reusing ragged fallback); the property pins it
    bitwise against the per-machine ``_flush`` chain under interleaved
    ``record_gather`` windows, eager ``record_series`` writes and scalar
    transitions across several machines.
    """

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_flush_all_matches_per_machine_flush(self, data):
        n_machines = data.draw(st.integers(3, 5))
        mids = [f"m{i}" for i in range(n_machines)]
        stacked = EnergyMeter()
        separate = EnergyMeter()
        t = {}
        for i, mid in enumerate(mids):
            for meter in (stacked, separate):
                meter.set_power(mid, 10.0 + i, 0.0)
            t[mid] = 0
        n_ops = data.draw(st.integers(3, 12))
        for _ in range(n_ops):
            mid = data.draw(st.sampled_from(mids))
            kind = data.draw(
                st.sampled_from(["gather", "series", "transition"])
            )
            t0 = t[mid] + data.draw(st.integers(1, 4))
            if kind == "transition":
                power = data.draw(st.floats(0.0, 800.0, allow_nan=False))
                for meter in (stacked, separate):
                    meter.set_power(mid, power, t0)
                t[mid] = t0
                continue
            n = data.draw(st.integers(1, 25))
            powers = np.array(
                data.draw(
                    st.lists(
                        st.floats(0.0, 500.0, allow_nan=False),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
            if kind == "gather":
                uniq, inverse = np.unique(powers, return_inverse=True)
                for meter in (stacked, separate):
                    meter.record_gather(mid, uniq, inverse, t0)
            else:  # eager record_series mixed into the same streams
                for meter in (stacked, separate):
                    meter.record_series(mid, powers, t0)
            t[mid] = t0 + n - 1
        end = max(t.values()) + 5
        # One meter settles machine-by-machine through the scalar-chain
        # flush; the other goes through the stacked multi-machine path.
        for mid in mids:
            separate._flush(mid)
        separate.finalize(end)
        stacked.finalize(end)
        assert stacked._totals == separate._totals
        assert stacked.total_energy == separate.total_energy


def _captured_set_power_run(replay, engine):
    """Run ``replay`` recording every ``meter.set_power`` call in order."""
    calls = []
    meter = replay.meter
    orig = meter.set_power

    def recorder(machine_id, power, now):
        calls.append((machine_id, power, now))
        orig(machine_id, power, now)

    meter.set_power = recorder
    try:
        result = replay.run(engine=engine)
    finally:
        del meter.set_power
    return result, calls


class TestReconfigSchedule:
    """PR 9: the batched reconfiguration schedule.

    The two-phase engine precomputes every reconfiguration
    (``_reconfig_schedule``) and executes the entries through the real
    FSM (``_start_scheduled``); the segment engine decides the same
    reconfigurations one at a time from inside its walk.  The schedule
    is correct iff both produce the identical ``Reconfiguration`` log
    and the identical machine-transition stream — the ``set_power``
    tuples that land in the two-phase journal.
    """

    def _assert_schedule_matches_walk(self, infra, trace, spec):
        table = infra.table(3000.0)

        def build():
            return EventDrivenReplay(
                table, trace,
                predictor=LookAheadMaxPredictor(200), app_spec=spec,
            )

        fsm, fsm_calls = _captured_set_power_run(build(), "segments")
        two, two_calls = _captured_set_power_run(build(), "twophase")
        assert two_calls == fsm_calls
        assert len(two.reconfigurations) == len(fsm.reconfigurations)
        for a, b in zip(two.reconfigurations, fsm.reconfigurations):
            assert a == b  # every field, including boot/off durations
        # Journal shape: a bare control pass leaves the journal open —
        # marker tokens must be the descriptor indices in order, and the
        # non-marker entries exactly the recorded transition stream.
        bare = build()
        plan = bare._control_pass()
        journal = bare.meter._batch
        markers = [e for e in journal if not isinstance(e, tuple)]
        tuples = [e for e in journal if isinstance(e, tuple)]
        assert markers == list(range(len(plan.descs)))
        # The journaled transition stream is the control-pass prefix of
        # the full twophase run's ``set_power`` stream (the rest are
        # finalize-era closes, issued after the journal settles).
        assert tuples == two_calls[: len(tuples)]

    @settings(max_examples=6, deadline=None)
    @given(stepped_trace(), st.sampled_from([0.5, 0.9]))
    def test_schedule_matches_fsm_under_powercap(self, trace, frac):
        self._assert_schedule_matches_walk(
            _capped_infra(frac), trace, ApplicationSpec()
        )

    @settings(max_examples=6, deadline=None)
    @given(
        stepped_trace(),
        st.sampled_from([(0.5, 0.5), (3.0, 2.5), (0.0, 7.0)]),
    )
    def test_schedule_matches_fsm_with_start_stop_times(
        self, infra, trace, times
    ):
        stop, start = times
        self._assert_schedule_matches_walk(
            infra, trace, ApplicationSpec(stop_time=stop, start_time=start)
        )

    @settings(max_examples=6, deadline=None)
    @given(
        stepped_trace(),
        st.sampled_from(
            [
                {"paravance": 1, "chromebook": 8, "raspberry": 8},
                {"paravance": 0, "chromebook": 12, "raspberry": 20},
            ]
        ),
    )
    def test_schedule_matches_fsm_bounded_inventory(
        self, infra, trace, inventory
    ):
        predictor = LookAheadMaxPredictor(200)
        outcome = BMLScheduler(
            infra, predictor=predictor, inventory=inventory
        ).plan_detailed(trace)

        def build():
            return EventDrivenReplay(
                outcome.table, trace,
                predictor=predictor, inventory=inventory,
            )

        fsm, fsm_calls = _captured_set_power_run(build(), "segments")
        two, two_calls = _captured_set_power_run(build(), "twophase")
        assert two_calls == fsm_calls
        assert len(two.reconfigurations) == len(fsm.reconfigurations)
        for a, b in zip(two.reconfigurations, fsm.reconfigurations):
            assert a == b


class TestUniqueInverse:
    """The bincount fast path of the kernel's rate compression."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_np_unique(self, data):
        from repro.sim.loadbalancer import _unique_inverse

        kind = data.draw(
            st.sampled_from(["integral", "fractional", "negzero"])
        )
        n = data.draw(st.integers(1, 200))
        if kind == "integral":
            values = np.array(
                data.draw(
                    st.lists(
                        st.integers(0, 3000), min_size=n, max_size=n
                    )
                ),
                dtype=float,
            )
        elif kind == "fractional":
            values = np.array(
                data.draw(
                    st.lists(
                        st.floats(0.0, 3000.0, allow_nan=False),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
        else:
            # -0.0 in an all-integral series must not flip sign bits in
            # the unique values (the fallback keeps -0.0 distinct bits).
            values = np.array(
                data.draw(
                    st.lists(
                        st.sampled_from([-0.0, 0.0, 1.0, 2.0]),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
        uniq_ref, inv_ref = np.unique(values, return_inverse=True)
        uniq, inv = _unique_inverse(values)
        assert np.array_equal(uniq, uniq_ref)
        assert np.array_equal(
            np.signbit(uniq), np.signbit(uniq_ref)
        )
        # Inverse maps may differ only if they reconstruct differently.
        assert np.array_equal(uniq[inv], uniq_ref[inv_ref])
        assert np.array_equal(
            np.signbit(uniq[inv]), np.signbit(uniq_ref[inv_ref])
        )


class TestWindowedBalancer:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_balance_series_matches_per_second(self, toy_profiles, data):
        big, little = toy_profiles
        meter = EnergyMeter()
        from repro.sim.machine import Machine, MachineState

        machines = []
        for i, prof in enumerate([big, little, little]):
            m = Machine(machine_id=f"m{i}", profile=prof, meter=meter)
            m.state = MachineState.ON
            machines.append(m)
        strategy = data.draw(st.sampled_from(["efficient", "proportional"]))
        n = data.draw(st.integers(1, 60))
        rates = np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 200.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        lb = LoadBalancer(strategy)
        window = lb.balance_series(rates, machines)
        for k, rate in enumerate(rates):
            scalar = lb.balance(float(rate), machines)
            assert scalar.unserved == window.unserved[k]
            for m in machines:
                assert scalar.shares[m.machine_id] == window.loads[m.machine_id][k]

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_record_series_matches_per_second_set_power(self, data):
        n = data.draw(st.integers(1, 50))
        powers = np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 500.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        t0 = data.draw(st.integers(0, 1000))
        scalar = EnergyMeter()
        scalar.set_power("m", 17.5, 0.0)
        for k, p in enumerate(powers):
            scalar.set_power("m", float(p), t0 + k)
        batched = EnergyMeter()
        batched.set_power("m", 17.5, 0.0)
        batched.record_series("m", powers, t0)
        assert scalar._totals == batched._totals
        assert scalar._power_now == batched._power_now
        assert float(scalar._since["m"]) == float(batched._since["m"])
        scalar.finalize(t0 + n + 5)
        batched.finalize(t0 + n + 5)
        assert scalar.total_energy == batched.total_energy
