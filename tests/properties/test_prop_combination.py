"""Property-based tests for combination building (greedy vs exact DP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import (
    Combination,
    greedy_combination,
    ideal_combination,
    ideal_table,
)
from repro.core.crossing import compute_thresholds
from repro.core.filtering import bml_candidates
from repro.core.profiles import ArchitectureProfile, table_i_profiles

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

TRIO = tuple(
    p for p in table_i_profiles() if p.name in ("paravance", "chromebook", "raspberry")
)
THRESHOLDS = {"paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0}


@st.composite
def architecture_family(draw):
    """2-4 architectures with strictly improving perf and max power."""
    n = draw(st.integers(2, 4))
    perfs = sorted(
        draw(
            st.lists(
                st.integers(2, 2000), min_size=n, max_size=n, unique=True
            )
        ),
        reverse=True,
    )
    powers = sorted(
        draw(
            st.lists(st.integers(2, 1000), min_size=n, max_size=n, unique=True)
        ),
        reverse=True,
    )
    profs = []
    for i, (pf, pw) in enumerate(zip(perfs, powers)):
        idle = draw(st.floats(0.0, float(pw)))
        profs.append(
            ArchitectureProfile(
                name=f"a{i}", max_perf=float(pf), idle_power=idle,
                max_power=float(pw),
            )
        )
    return profs


@given(st.floats(0.0, 6000.0))
def test_greedy_capacity_covers_rate_table_i(rate):
    combo = greedy_combination(rate, TRIO, THRESHOLDS)
    assert combo.capacity >= rate - 1e-9


@given(st.integers(0, 4000))
def test_greedy_never_below_ideal_table_i(rate):
    combo = greedy_combination(float(rate), TRIO, THRESHOLDS)
    ideal = ideal_table(TRIO, float(max(rate, 1)))
    assert combo.power(float(rate)) >= ideal[rate] - 1e-9


@given(st.integers(1, 3000), st.integers(1, 3000))
def test_ideal_table_monotone_table_i(r1, r2):
    lo, hi = sorted([r1, r2])
    tbl = ideal_table(TRIO, float(hi))
    assert tbl[lo] <= tbl[hi] + 1e-9


@settings(max_examples=25, deadline=None)
@given(architecture_family(), st.integers(0, 500))
def test_dp_optimal_on_random_families(profs, rate):
    """The DP optimum is a true lower bound for the paper's greedy run on
    the same (filtered + thresholded) family."""
    kept = bml_candidates(profs).kept
    report = compute_thresholds(list(kept))
    if not report.kept:
        return
    ordered = list(report.kept)
    combo = greedy_combination(float(rate), ordered, report.thresholds)
    tbl = ideal_table(ordered, float(max(rate, 1)))
    assert combo.power(float(rate)) >= tbl[rate] - 1e-6


@settings(max_examples=25, deadline=None)
@given(architecture_family(), st.integers(1, 400))
def test_ideal_combination_achieves_table_power(profs, rate):
    tbl = ideal_table(profs, float(rate))
    combo = ideal_combination(float(rate), profs)
    assert combo.capacity >= rate - 1e-9
    assert combo.power(float(rate)) == pytest.approx(tbl[rate])


@given(
    st.lists(st.integers(0, 5), min_size=3, max_size=3),
    st.lists(st.integers(0, 5), min_size=3, max_size=3),
)
def test_union_max_contains_both(ca, cb):
    a = Combination.of(dict(zip(TRIO, ca)))
    b = Combination.of(dict(zip(TRIO, cb)))
    u = a.union_max(b)
    for prof in TRIO:
        assert u.count_of(prof.name) == max(
            a.count_of(prof.name), b.count_of(prof.name)
        )


@given(
    st.lists(st.integers(0, 5), min_size=3, max_size=3),
    st.lists(st.integers(0, 5), min_size=3, max_size=3),
)
def test_diff_is_antisymmetric(ca, cb):
    a = Combination.of(dict(zip(TRIO, ca)))
    b = Combination.of(dict(zip(TRIO, cb)))
    dab = a.diff(b)
    dba = b.diff(a)
    assert {k: -v for k, v in dab.items()} == dba


@given(st.lists(st.integers(0, 4), min_size=3, max_size=3), st.floats(0, 1))
def test_combination_power_monotone_in_rate(counts, frac):
    combo = Combination.of(dict(zip(TRIO, counts)))
    if not combo:
        return
    r = frac * combo.capacity
    assert combo.power(r) <= combo.power(combo.capacity) + 1e-9
    assert combo.power(0.0) <= combo.power(r) + 1e-9


@given(st.lists(st.integers(0, 4), min_size=3, max_size=3), st.floats(0, 1))
def test_canonical_never_cheaper_than_optimal(counts, frac):
    combo = Combination.of(dict(zip(TRIO, counts)))
    if not combo:
        return
    r = frac * combo.capacity
    assert combo.power_canonical(r) >= combo.power(r) - 1e-9
