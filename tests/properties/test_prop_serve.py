"""Streaming-vs-batch identity under randomised chunkings and crashes.

The keystone contract of the serve subsystem: for *any* chunking of the
feed, with or without crash/resume cycles at *any* point, the streaming
engine emits the exact decision stream the batch two-phase replay
derives from the whole trace, and the crash-safe journal ends up byte
for byte identical to an uninterrupted run's.  Plus the bounded-memory
guarantee: engine state does not grow with feed length.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import DecisionJournal, StreamingProvisioner

from serve_testlib import WINDOW

pytestmark = pytest.mark.quick


def _random_chunks(rng, n, max_chunk=5000):
    """Split ``n`` samples into random-size contiguous chunks."""
    sizes = []
    left = n
    while left:
        size = int(rng.integers(1, min(max_chunk, left) + 1))
        sizes.append(size)
        left -= size
    return sizes


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_chunkings_are_batch_identical(
    serve_table, serve_values, batch_reconfigs, batch_payloads, seed
):
    rng = np.random.default_rng(seed)
    engine = StreamingProvisioner(serve_table, window=WINDOW)
    decisions = []
    pos = 0
    for size in _random_chunks(rng, len(serve_values)):
        decisions += engine.feed(serve_values[pos : pos + size])
        pos += size
    decisions += engine.finalize()
    assert len(decisions) == len(batch_reconfigs)
    assert all(d.matches(r) for d, r in zip(decisions, batch_reconfigs))
    assert [d.to_payload() for d in decisions] == batch_payloads


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_random_crash_resume_journal_byte_identical(
    tmp_path, serve_table, serve_values, batch_payloads, seed
):
    """Crash at random points, resume from the last checkpoint, end with
    a byte-identical journal.

    Simulates the daemon's crash protocol in-process: decisions are
    journaled (fsync'd) as they emerge, checkpoints are taken at random
    chunk boundaries, and a "crash" discards every live object —
    optionally leaving torn garbage at the journal tail, like a real
    ``kill -9`` mid-append — before restoring from the checkpoint and
    re-feeding from the checkpoint's sample offset under a *different*
    chunking.
    """
    rng = np.random.default_rng(seed)
    path = tmp_path / f"journal-{seed}.bin"
    values = serve_values

    def fresh_engine():
        return StreamingProvisioner(serve_table, window=WINDOW)

    engine = fresh_engine()
    journal = DecisionJournal(path)
    # The daemon checkpoints before consuming anything: a crash before
    # the first periodic checkpoint must still leave a resumable base.
    checkpoint = json.loads(json.dumps(engine.state_dict()))
    crashes = 0
    while True:
        pos = engine.samples_in
        if pos >= len(values) and engine.finalized:
            break
        if pos < len(values):
            size = int(rng.integers(1, 900))
            decisions = engine.feed(values[pos : pos + size])
        else:
            decisions = engine.finalize()
        base_index = engine.decisions_out - len(decisions)
        for i, d in enumerate(decisions):
            # Re-derived decisions verify against journaled bytes; new
            # ones append durably.
            journal.append(base_index + i, d.to_payload())
        roll = rng.random()
        if roll < 0.3:
            # Periodic checkpoint (JSON round-trip like the RunStore).
            checkpoint = json.loads(json.dumps(engine.state_dict()))
        elif roll < 0.6 and crashes < 6:
            # Crash: lose the engine + journal objects; maybe tear the
            # next (never-acknowledged) append mid-frame.
            crashes += 1
            journal.close()
            if rng.random() < 0.5:
                with open(path, "ab") as fh:
                    fh.write(b"\x99\x00\x00\x00torn")
            engine = fresh_engine()
            engine.restore(checkpoint)
            journal = DecisionJournal(path)  # recovery truncates the tear
            assert journal.count >= engine.decisions_out
    journal.close()
    assert crashes > 0  # the schedule above must actually exercise crashes
    with DecisionJournal(path) as final:
        assert final.payloads() == batch_payloads


def test_resume_replay_is_verify_only(tmp_path, serve_table, serve_values):
    """A resumed engine behind the journal re-derives decisions that are
    verified (append returns False), never rewritten."""
    path = tmp_path / "journal.bin"
    engine = StreamingProvisioner(serve_table, window=WINDOW)
    journal = DecisionJournal(path)
    # Deep enough into the trace that decisions exist before the cut.
    cut = (len(serve_values) * 3) // 4
    checkpoint = json.loads(json.dumps(engine.state_dict()))  # at t=0
    for i, d in enumerate(engine.feed(serve_values[:cut])):
        journal.append(i, d.to_payload())
    journal.close()
    journaled = journal.count
    assert journaled > 0

    resumed = StreamingProvisioner(serve_table, window=WINDOW)
    resumed.restore(checkpoint)  # way behind the journal
    journal = DecisionJournal(path)
    moved = []
    idx = resumed.decisions_out
    for d in resumed.feed(serve_values[:cut]):
        moved.append(journal.append(idx, d.to_payload()))
        idx += 1
    # Every re-derived decision hit the verify path: zero bytes moved.
    assert moved and not any(moved)
    assert journal.count == journaled
    journal.close()


def test_memory_is_bounded_by_window_not_feed_length(serve_table):
    rng = np.random.default_rng(7)
    engine = StreamingProvisioner(serve_table, window=WINDOW)
    engine.feed(rng.uniform(50.0, 900.0, size=WINDOW * 2))
    after_short = engine.state_nbytes()
    for _ in range(30):
        engine.feed(rng.uniform(50.0, 900.0, size=3600))
    after_long = engine.state_nbytes()
    assert after_long == after_short  # state is O(window), not O(feed)
    assert len(engine.state_dict()["tail"]) == WINDOW - 1
    # The delta memo is bounded by distinct transition pairs, not time.
    assert len(engine._delta_memo) <= len(serve_table.counts_array) ** 2
