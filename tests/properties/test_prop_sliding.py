"""Property-based tests for sliding maxima (the prediction hot path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.workload.sliding import lookahead_max, lookahead_max_reference, trailing_max

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

series_st = arrays(
    dtype=np.float64,
    shape=st.integers(1, 400),
    elements=st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
)


@given(series_st, st.integers(1, 500))
def test_fast_equals_reference(arr, window):
    assert np.array_equal(
        lookahead_max(arr, window), lookahead_max_reference(arr, window)
    )


@given(series_st, st.integers(1, 500))
def test_lookahead_dominates_input(arr, window):
    assert np.all(lookahead_max(arr, window) >= arr)


@given(series_st, st.integers(1, 50), st.integers(1, 50))
def test_larger_window_dominates(arr, w1, w2):
    small, large = sorted([w1, w2])
    assert np.all(lookahead_max(arr, large) >= lookahead_max(arr, small))


@given(series_st, st.integers(1, 100))
def test_lookahead_values_come_from_input(arr, window):
    out = lookahead_max(arr, window)
    values = set(arr.tolist())
    assert all(v in values for v in out.tolist())


@given(series_st, st.integers(1, 100))
def test_trailing_is_time_reversed_lookahead(arr, window):
    assert np.array_equal(
        trailing_max(arr, window), lookahead_max(arr[::-1], window)[::-1]
    )


@given(series_st)
def test_window_full_length_is_suffix_max(arr):
    out = lookahead_max(arr, len(arr))
    assert np.array_equal(out, np.maximum.accumulate(arr[::-1])[::-1])


@given(series_st, st.integers(1, 500))
def test_trailing_fast_equals_reference(arr, window):
    """The scipy trailing fast path matches the pure-Python deque reference."""
    reference = lookahead_max_reference(arr[::-1], min(window, len(arr)))[::-1]
    assert np.array_equal(trailing_max(arr, window), reference)


@given(series_st, st.integers(1, 100))
def test_trailing_matches_naive_definition(arr, window):
    out = trailing_max(arr, window)
    for t in range(len(arr)):
        assert out[t] == arr[max(0, t - window + 1) : t + 1].max()
