"""Property-based tests for LoadTrace invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.workload.trace import LoadTrace

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

values_st = arrays(
    dtype=np.float64,
    shape=st.integers(1, 500),
    elements=st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
)


@given(values_st)
def test_stats_consistent(values):
    t = LoadTrace(values)
    assert t.peak == values.max()
    assert t.mean == np.mean(values)
    assert t.total_demand == np.sum(values)


@given(values_st, st.data())
def test_slicing_preserves_values(values, data):
    t = LoadTrace(values)
    lo = data.draw(st.integers(0, len(t) - 1))
    hi = data.draw(st.integers(lo + 1, len(t)))
    s = t[lo:hi]
    assert np.array_equal(s.values, values[lo:hi])
    assert s.t0 == t.t0 + lo


@given(values_st, st.integers(1, 20))
def test_max_resample_never_loses_peak(values, k):
    t = LoadTrace(values, timestep=1.0)
    r = t.resampled(float(k), how="max")
    assert r.peak == t.peak


@given(values_st, st.integers(1, 20))
def test_mean_resample_preserves_demand(values, k):
    t = LoadTrace(values, timestep=1.0)
    r = t.resampled(float(k), how="mean")
    # the partial tail group keeps its own mean, so demand matches exactly
    # only when k divides the length; otherwise it is within one group.
    if len(values) % k == 0:
        assert r.total_demand == np.float64(np.sum(values.reshape(-1, k).mean(axis=1)) * k)


@given(values_st, st.floats(0.0, 100.0))
def test_scaling_scales_stats(values, factor):
    t = LoadTrace(values).scaled(factor)
    assert t.peak == np.max(values) * factor


@given(values=values_st)
def test_npz_round_trip(values, tmp_path_factory):
    t = LoadTrace(values, timestep=2.0, name="prop", t0=7.0)
    path = tmp_path_factory.mktemp("npz") / "t.npz"
    t.to_npz(path)
    back = LoadTrace.from_npz(path)
    assert np.array_equal(back.values, t.values)
    assert back.timestep == t.timestep
