"""Property-based tests for power models (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import ArchitectureProfile

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

profile_st = st.builds(
    ArchitectureProfile,
    name=st.just("x"),
    max_perf=st.floats(1.0, 10_000.0),
    idle_power=st.floats(0.0, 500.0),
    max_power=st.floats(500.0, 2_000.0),
    on_time=st.floats(0.0, 600.0),
    on_energy=st.floats(0.0, 1e5),
    off_time=st.floats(0.0, 600.0),
    off_energy=st.floats(0.0, 1e5),
)


@given(profile_st, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_single_node_power_monotone_in_rate(prof, f1, f2):
    r1, r2 = sorted([f1 * prof.max_perf, f2 * prof.max_perf])
    assert prof.power(r1) <= prof.power(r2) + 1e-9


@given(profile_st, st.floats(0.0, 1.0))
def test_power_between_idle_and_max(prof, frac):
    p = prof.power(frac * prof.max_perf)
    assert prof.idle_power - 1e-9 <= p <= prof.max_power + 1e-9


@given(profile_st, st.floats(0.0, 5.0))
def test_stack_power_at_least_proportional_floor(prof, mult):
    """A stack can never draw less than full-load efficiency x rate."""
    rate = mult * prof.max_perf
    power = prof.stack_power(rate)
    assert power >= prof.full_load_efficiency * rate - 1e-6


@given(profile_st, st.floats(0.0, 5.0))
def test_stack_power_matches_node_count(prof, mult):
    rate = mult * prof.max_perf
    nodes = prof.nodes_required(rate)
    assert nodes * prof.max_perf >= rate - 1e-6
    if nodes > 0:
        assert (nodes - 1) * prof.max_perf < rate + 1e-6


@given(profile_st, st.floats(0.0, 3.0), st.floats(0.0, 3.0))
def test_stack_power_monotone(prof, m1, m2):
    r1, r2 = sorted([m1 * prof.max_perf, m2 * prof.max_perf])
    assert prof.stack_power(r1) <= prof.stack_power(r2) + 1e-9


@given(profile_st, st.integers(0, 400))
def test_stack_vectorised_equals_scalar(prof, k):
    rates = np.linspace(0, 3 * prof.max_perf, 7) + k * 0.01
    rates = np.clip(rates, 0, None)
    vec = np.asarray(prof.stack_power(rates))
    scal = [prof.stack_power(float(r)) for r in rates]
    assert np.allclose(vec, scal)


@given(profile_st)
def test_dict_round_trip(prof):
    assert ArchitectureProfile.from_dict(prof.as_dict()) == prof
