"""Property-based tests for the scheduler and plan executor.

These are end-to-end invariants: for *any* load trace, the planned
schedule must be well-formed, block during reconfigurations, provision
enough capacity for every prediction, and the integrated energy must lie
between the theoretical lower bound and the always-peak upper bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.prediction import LookAheadMaxPredictor
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan, lower_bound_result
from repro.workload.trace import LoadTrace

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

load_st = arrays(
    dtype=np.float64,
    shape=st.integers(50, 1200),
    elements=st.floats(0.0, 3000.0, allow_nan=False, allow_infinity=False),
)
window_st = st.integers(1, 600)


@settings(max_examples=30, deadline=None)
@given(load_st, window_st)
def test_plan_is_wellformed(infra_session, load, window):
    trace = LoadTrace(load)
    plan = BMLScheduler(
        infra_session, predictor=LookAheadMaxPredictor(window)
    ).plan(trace)
    t = 0
    for seg in plan.segments:
        assert seg.t_start == t
        t = seg.t_end
    assert t == len(trace)
    for a, b in zip(plan.reconfigurations[:-1], plan.reconfigurations[1:]):
        assert b.decided_at >= a.completes_at


@settings(max_examples=30, deadline=None)
@given(load_st, window_st)
def test_targets_cover_predictions(infra_session, load, window):
    trace = LoadTrace(load)
    out = BMLScheduler(
        infra_session, predictor=LookAheadMaxPredictor(window)
    ).plan_detailed(trace)
    for r in out.plan.reconfigurations:
        assert r.after.capacity >= out.predictions[r.decided_at] - 1e-6


@settings(max_examples=20, deadline=None)
@given(load_st)
def test_energy_bounded_below_by_lower_bound(infra_session, load):
    trace = LoadTrace(load)
    plan = BMLScheduler(infra_session).plan(trace)
    res = execute_plan(plan, trace)
    lb = lower_bound_result(
        trace, infra_session.table(max(trace.peak, 1.0))
    )
    assert res.total_energy >= lb.total_energy - 1e-6


@settings(max_examples=20, deadline=None)
@given(load_st)
def test_unserved_only_during_reconfigurations(infra_session, load):
    """With look-ahead-max prediction, capacity shortfalls can only occur
    while a reconfiguration is in flight (old serving set)."""
    trace = LoadTrace(load)
    plan = BMLScheduler(infra_session).plan(trace)
    res = execute_plan(plan, trace)
    violating = np.flatnonzero(res.unserved > 1e-9)
    windows = [(r.decided_at, r.completes_at) for r in plan.reconfigurations]
    for t in violating:
        assert any(a <= t < b for a, b in windows)


@pytest.fixture(scope="module")
def infra_session():
    from repro.core.bml import design
    from repro.core.profiles import table_i_profiles

    return design(table_i_profiles())
