"""Equivalence properties for the vectorized combination engine.

The numpy kernels in :mod:`repro.core.combination` (run-length greedy
table construction, chunked cover DP, Gil-Werman sliding minimum,
mixed-radix row ids) promise *bit-identical* results to the pure-Python
references they replaced.  These properties pin that promise across random
architecture families, resolutions and inventories.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import (
    Combination,
    CombinationTable,
    _greedy_combos_reference,
    _sliding_min_with_arg,
    _sliding_min_with_arg_reference,
    _solve_dp,
    _solve_dp_reference,
    build_table,
    greedy_combination,
    greedy_combination_bounded,
)
from repro.core.profiles import ArchitectureProfile, table_i_profiles
from repro.core.scheduler import _row_ids

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

TRIO = tuple(
    p for p in table_i_profiles() if p.name in ("paravance", "chromebook", "raspberry")
)
THRESHOLDS = {"paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0}


@st.composite
def architecture_family(draw):
    """2-4 architectures with strictly improving perf and max power."""
    n = draw(st.integers(2, 4))
    perfs = sorted(
        draw(st.lists(st.integers(2, 800), min_size=n, max_size=n, unique=True)),
        reverse=True,
    )
    powers = sorted(
        draw(st.lists(st.integers(2, 1000), min_size=n, max_size=n, unique=True)),
        reverse=True,
    )
    profs = []
    for i, (pf, pw) in enumerate(zip(perfs, powers)):
        idle = draw(st.floats(0.0, float(pw)))
        profs.append(
            ArchitectureProfile(
                name=f"a{i}", max_perf=float(pf), idle_power=idle,
                max_power=float(pw),
            )
        )
    return profs


@st.composite
def thresholds_for(draw, profs):
    return {
        p.name: float(draw(st.integers(1, max(1, int(p.max_perf)))))
        for p in profs
    }


def _reference_table(ordered, thresholds, max_units, resolution, inventory=None):
    """Seed-style table: per-rate greedy + per-combo scalar power."""
    combos = _greedy_combos_reference(
        ordered, thresholds, max_units, resolution, inventory
    )
    index = {p.name: i for i, p in enumerate(ordered)}
    counts = np.zeros((len(combos), len(ordered)), dtype=np.int64)
    for i, combo in enumerate(combos):
        for name, cnt in combo.counts.items():
            counts[i, index[name]] = cnt
    power = np.array([c.power(i * resolution) for i, c in enumerate(combos)])
    floor = np.array(
        [c.power(max(i - 1, 0) * resolution) for i, c in enumerate(combos)]
    )
    return combos, counts, power, floor


class TestGreedyTableEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.data(), architecture_family(), st.sampled_from([0.5, 1.0, 2.0]))
    def test_vectorized_matches_per_rate_reference(self, data, profs, resolution):
        thresholds = data.draw(thresholds_for(profs))
        max_units = data.draw(st.integers(0, 400))
        table = build_table(
            profs, thresholds, max_units * resolution, resolution, "greedy"
        )
        combos, counts, power, floor = _reference_table(
            profs, thresholds, max_units, resolution
        )
        assert np.array_equal(table.counts_array, counts)
        assert np.array_equal(table.power_array, power)
        assert np.array_equal(table._power_floor, floor)
        assert all(a == b for a, b in zip(table._combos, combos))

    @settings(max_examples=30, deadline=None)
    @given(st.data(), architecture_family())
    def test_bounded_vectorized_matches_reference(self, data, profs):
        inventory = {
            p.name: data.draw(st.integers(0, 6)) for p in profs
        }
        capacity = sum(p.max_perf * inventory[p.name] for p in profs)
        max_units = data.draw(st.integers(0, max(int(capacity), 0)))
        thresholds = data.draw(thresholds_for(profs))
        try:
            table = build_table(
                profs, thresholds, float(max_units), 1.0, "greedy",
                inventory=inventory,
            )
        except Exception as exc:
            with pytest.raises(type(exc)):
                _reference_table(profs, thresholds, max_units, 1.0, inventory)
            return
        combos, counts, power, floor = _reference_table(
            profs, thresholds, max_units, 1.0, inventory
        )
        assert np.array_equal(table.counts_array, counts)
        assert np.array_equal(table.power_array, power)
        assert all(a == b for a, b in zip(table._combos, combos))

    def test_table_i_fig5_table_bit_identical(self):
        """The acceptance-criterion case: Table I trio at max_rate=5000."""
        table = build_table(TRIO, THRESHOLDS, 5000.0, 1.0, "greedy")
        combos, counts, power, floor = _reference_table(
            TRIO, THRESHOLDS, 5000, 1.0
        )
        assert np.array_equal(table.counts_array, counts)
        assert np.array_equal(table.power_array, power)
        assert np.array_equal(table._power_floor, floor)

    def test_run_length_materialization(self):
        """O(#distinct) objects: runs of identical rows share one object."""
        table = build_table(TRIO, THRESHOLDS, 2000.0, 1.0, "greedy")
        distinct_rows = len(np.unique(table.counts_array, axis=0))
        distinct_objects = len({id(c) for c in table._combos})
        assert distinct_objects == distinct_rows
        assert distinct_objects < len(table) / 4


class TestDPEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(architecture_family(), st.integers(0, 500), st.sampled_from([0.5, 1.0]))
    def test_numpy_dp_matches_reference(self, profs, max_units, resolution):
        fast = _solve_dp(profs, max_units, resolution)
        ref = _solve_dp_reference(profs, max_units, resolution)
        assert np.array_equal(fast.power, ref.power)
        assert np.array_equal(fast.cover_cost, ref.cover_cost)
        assert np.array_equal(fast.cover_choice, ref.cover_choice)
        assert np.array_equal(fast.partial_arch, ref.partial_arch)
        assert np.array_equal(fast.partial_from, ref.partial_from)

    @settings(max_examples=20, deadline=None)
    @given(architecture_family(), st.integers(1, 300))
    def test_ideal_table_matches_reference_backtracking(self, profs, max_units):
        from repro.core.combination import _grid_capacities

        table = build_table(profs, {}, float(max_units), 1.0, "ideal")
        dp = _solve_dp_reference(profs, max_units, 1.0)
        caps = _grid_capacities(profs, 1.0)
        for k in range(max_units + 1):
            counts = {}
            a, r = int(dp.partial_arch[k]), k
            if a >= 0:
                p = dp.profiles[a]
                counts[p] = counts.get(p, 0) + 1
                r = int(dp.partial_from[k])
            while r > 0:
                a = int(dp.cover_choice[r])
                assert a >= 0
                p = dp.profiles[a]
                counts[p] = counts.get(p, 0) + 1
                r -= caps[a]
            assert table._combos[k] == Combination.of(counts)

    def test_dp_matches_reference_table_i(self):
        fast = _solve_dp(TRIO, 4000, 1.0)
        ref = _solve_dp_reference(TRIO, 4000, 1.0)
        assert np.array_equal(fast.power, ref.power)
        assert np.array_equal(fast.partial_from, ref.partial_from)


class TestSlidingMinEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_matches_deque_reference(self, data):
        n = data.draw(st.integers(1, 120))
        window = data.draw(st.integers(1, 130))
        # Small integer values force ties; infs model unreachable DP states.
        vals = np.array(
            data.draw(
                st.lists(
                    st.one_of(
                        st.integers(0, 5).map(float), st.just(float("inf"))
                    ),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        best_f, arg_f = _sliding_min_with_arg(vals, window)
        best_r, arg_r = _sliding_min_with_arg_reference(vals, window)
        assert np.array_equal(best_f, best_r)
        assert np.array_equal(arg_f, arg_r)


class TestRowIdsEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_equality_pattern_matches_unique_reference(self, data):
        n = data.draw(st.integers(1, 60))
        width = data.draw(st.integers(1, 4))
        rows = data.draw(
            st.lists(
                st.lists(st.integers(0, 4), min_size=width, max_size=width),
                min_size=n,
                max_size=n,
            )
        )
        counts = np.array(rows, dtype=np.int64)
        ids = _row_ids(counts)
        _, reference = np.unique(counts, axis=0, return_inverse=True)
        reference = reference.reshape(-1)
        # ids are equal exactly when rows are equal...
        assert np.array_equal(
            ids[:, None] == ids[None, :], reference[:, None] == reference[None, :]
        )
        # ...so the scheduler sees identical change points.
        assert np.array_equal(
            np.flatnonzero(ids[1:] != ids[:-1]),
            np.flatnonzero(reference[1:] != reference[:-1]),
        )

    def test_change_points_on_real_table(self):
        table = build_table(TRIO, THRESHOLDS, 3000.0, 1.0, "greedy")
        rates = np.linspace(0.0, 3000.0, 7001)
        counts = table.counts_for(rates)
        ids = _row_ids(counts)
        _, reference = np.unique(counts, axis=0, return_inverse=True)
        reference = reference.reshape(-1)
        assert np.array_equal(
            np.flatnonzero(ids[1:] != ids[:-1]),
            np.flatnonzero(reference[1:] != reference[:-1]),
        )


class TestTableViews:
    def test_truncated_view_shares_arrays_and_matches_fresh_build(self):
        big = build_table(TRIO, THRESHOLDS, 4000.0, 1.0, "greedy")
        view = big.truncated(1500)
        fresh = build_table(TRIO, THRESHOLDS, 1500.0, 1.0, "greedy")
        assert view.max_rate == 1500.0
        assert len(view) == 1501
        assert np.array_equal(view.power_array, fresh.power_array)
        assert np.array_equal(view.counts_array, fresh.counts_array)
        assert np.shares_memory(view._power, big._power)  # zero-copy slice
        with pytest.raises(Exception):
            view.power_for(1501.0)

    def test_truncated_noop_when_covering(self):
        table = build_table(TRIO, THRESHOLDS, 100.0, 1.0, "greedy")
        assert table.truncated(100) is table
        assert table.truncated(500) is table
