"""Property-based cross-validation: fast path vs event-driven simulator.

The vectorised plan executor and the machine-level event simulator share
only the combination table and the predictor.  For *any* load trace their
per-second power and unserved series must match exactly — this is the
library's strongest end-to-end invariant, here hammered with randomly
generated traces instead of the fixed ones the unit tests use.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bml import design
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.profiles import table_i_profiles
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.sim.loop import EventDrivenReplay
from repro.workload.trace import LoadTrace

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick


@pytest.fixture(scope="module")
def infra_cv():
    return design(table_i_profiles())


# Short traces keep the O(T x machines) event loop fast; rates span the
# whole range from idle to multiple Bigs so every machine type cycles.
trace_st = arrays(
    dtype=np.float64,
    shape=st.integers(120, 900),
    elements=st.floats(0.0, 4000.0, allow_nan=False, allow_infinity=False),
)
window_st = st.sampled_from([5, 30, 189, 378])


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(values=trace_st, window=window_st)
def test_power_series_identical(infra_cv, values, window):
    trace = LoadTrace(values)
    predictor = LookAheadMaxPredictor(window)
    outcome = BMLScheduler(infra_cv, predictor=predictor).plan_detailed(trace)
    fast = execute_plan(outcome.plan, trace)
    slow = EventDrivenReplay(outcome.table, trace, predictor=predictor).run()
    assert np.allclose(fast.power, slow.power, atol=1e-9)
    assert np.allclose(fast.unserved, slow.unserved, atol=1e-9)
    assert fast.n_reconfigurations == slow.n_reconfigurations


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(values=trace_st)
def test_meter_ledger_matches_integral(infra_cv, values):
    trace = LoadTrace(values)
    predictor = LookAheadMaxPredictor(60)
    outcome = BMLScheduler(infra_cv, predictor=predictor).plan_detailed(trace)
    replay = EventDrivenReplay(outcome.table, trace, predictor=predictor)
    result = replay.run()
    assert result.meta["meter_energy_j"] == pytest.approx(
        result.total_energy, rel=1e-9, abs=1e-6
    )
