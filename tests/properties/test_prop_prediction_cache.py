"""Properties of the process-wide predictor-series cache.

PR 9's caching contract (:func:`repro.core.prediction.cached_prediction_series`):

* a cache hit returns the stored series **bit-identical** to a fresh
  computation, read-only, without recomputing the sliding filter;
* the key — ``(trace content digest, timestep, predictor token, clamp)``
  — separates every distinct (trace, window, clamp) combination, so
  bounded and unbounded replays over the same workload never collide;
* a damaged entry (bit rot, or the ``predict-cache`` fault injection
  poisoning the store) is detected by the sampled checksum and rebuilt
  instead of trusted.
"""

import numpy as np
import pytest

from repro import faults
from repro.core.prediction import (
    LookAheadMaxPredictor,
    cached_prediction_series,
    clear_prediction_cache,
    prediction_cache_stats,
)
from repro.workload.trace import LoadTrace

pytestmark = pytest.mark.quick


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_prediction_cache()
    yield
    clear_prediction_cache()


def _trace(seed: int, n: int = 800, name: str = "cache-prop") -> LoadTrace:
    rng = np.random.default_rng(seed)
    return LoadTrace(rng.uniform(0.0, 2500.0, size=n), name=name)


class TestCacheHit:
    def test_hit_is_bit_identical_and_read_only(self):
        trace = _trace(1)
        predictor = LookAheadMaxPredictor(120)
        fresh = predictor.series(trace)
        first = cached_prediction_series(predictor, trace)
        assert np.array_equal(first, fresh)
        before = prediction_cache_stats()
        second = cached_prediction_series(predictor, trace)
        after = prediction_cache_stats()
        # Served from the cache: the very same read-only buffer, one
        # more hit, no recomputation (miss count unchanged).
        assert second is first
        assert not second.flags.writeable
        assert after["table_cache_hits"] == before["table_cache_hits"] + 1
        assert after["table_cache_misses"] == before["table_cache_misses"]
        assert after["rebuilds"] == before["rebuilds"]

    def test_equal_content_trace_shares_the_entry(self):
        trace_a = _trace(2, name="run-a")
        trace_b = LoadTrace(trace_a.values.copy(), name="run-b")
        predictor = LookAheadMaxPredictor(90)
        first = cached_prediction_series(predictor, trace_a)
        second = cached_prediction_series(predictor, trace_b)
        # Content-addressed: an equal-content trace object hits.
        assert second is first


class TestKeySeparation:
    def test_window_clamp_and_trace_never_collide(self):
        traces = [_trace(3, name="t3"), _trace(4, name="t4")]
        windows = [30, 200]
        clamps = [None, 700.0]
        # Populate every combination, then re-query: each must return
        # exactly its own freshly computed series.
        for trace in traces:
            for window in windows:
                for clamp in clamps:
                    cached_prediction_series(
                        LookAheadMaxPredictor(window), trace, clamp=clamp
                    )
        for trace in traces:
            for window in windows:
                for clamp in clamps:
                    predictor = LookAheadMaxPredictor(window)
                    expect = predictor.series(trace)
                    if clamp is not None:
                        expect = np.minimum(expect, clamp)
                    got = cached_prediction_series(
                        predictor, trace, clamp=clamp
                    )
                    assert np.array_equal(got, expect), (
                        trace.name, window, clamp
                    )

    def test_clamped_and_unclamped_entries_are_distinct(self):
        trace = _trace(5)
        predictor = LookAheadMaxPredictor(60)
        unclamped = cached_prediction_series(predictor, trace)
        clamped = cached_prediction_series(predictor, trace, clamp=500.0)
        assert unclamped is not clamped
        assert float(np.max(clamped)) <= 500.0
        assert float(np.max(unclamped)) > 500.0


class TestPoisonedEntryRebuild:
    def test_poisoned_store_is_detected_and_rebuilt(self):
        trace = _trace(6, name="poisoned-run")
        predictor = LookAheadMaxPredictor(150)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    site="predict-cache",
                    key=trace.name,
                    fail_attempts=faults.ALWAYS,
                ),
            )
        )
        with faults.injected(plan):
            first = cached_prediction_series(predictor, trace)
        # The returned series is clean even though the store poisoned
        # its cached copy.
        assert np.array_equal(first, predictor.series(trace))
        before = prediction_cache_stats()
        second = cached_prediction_series(predictor, trace)
        after = prediction_cache_stats()
        # The damaged entry was detected (checksum mismatch), dropped
        # and rebuilt — not served as-is.
        assert after["rebuilds"] == before["rebuilds"] + 1
        assert np.array_equal(second, first)
        # The rebuilt entry is clean: the next query is a plain hit.
        third = cached_prediction_series(predictor, trace)
        assert third is second
        assert prediction_cache_stats()["rebuilds"] == after["rebuilds"]
