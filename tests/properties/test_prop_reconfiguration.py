"""Property-based tests for reconfiguration planning invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import Combination
from repro.core.profiles import table_i_profiles
from repro.core.reconfiguration import (
    build_plan,
    plan_reconfiguration,
    reconfiguration_window,
)

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

TRIO = tuple(
    p for p in table_i_profiles() if p.name in ("paravance", "chromebook", "raspberry")
)

combo_st = st.builds(
    lambda counts: Combination.of(dict(zip(TRIO, counts))),
    st.lists(st.integers(0, 6), min_size=3, max_size=3),
)


@given(combo_st, combo_st)
def test_window_durations_bound_profiles(a, b):
    boot, off = reconfiguration_window(a, b)
    max_on = max(int(np.ceil(p.on_time)) for p in TRIO)
    max_off = max(int(np.ceil(p.off_time)) for p in TRIO)
    assert 0 <= boot <= max_on
    assert 0 <= off <= max_off


@given(combo_st, combo_st)
def test_switch_energy_matches_deltas(a, b):
    if a == b:
        return
    _, event = plan_reconfiguration(0, a, b, 10_000)
    expected_on = sum(
        d * p.on_energy
        for p in TRIO
        for n, d in a.diff(b).items()
        if n == p.name and d > 0
    )
    expected_off = sum(
        -d * p.off_energy
        for p in TRIO
        for n, d in a.diff(b).items()
        if n == p.name and d < 0
    )
    assert event.on_energy == pytest.approx(expected_on)
    assert event.off_energy == pytest.approx(expected_off)


@given(combo_st, combo_st)
def test_segment_overheads_integrate_to_switch_energy_plus_waiting(a, b):
    """Integrated overhead = On energy + Off energy + waiting-idle energy
    of machines that booted before the slowest one."""
    if a == b:
        return
    segs, event = plan_reconfiguration(0, a, b, 10_000)
    integrated = sum(s.overhead_power * s.duration for s in segs)
    delta = a.diff(b)
    waiting = 0.0
    boot = event.boot_duration
    for p in TRIO:
        d = delta.get(p.name, 0)
        if d > 0:
            waiting += d * p.idle_power * (boot - int(np.ceil(p.on_time)))
    assert integrated == pytest.approx(event.switch_energy + waiting, rel=1e-9)


@given(
    combo_st,
    st.lists(st.tuples(st.integers(0, 5000), combo_st), min_size=0, max_size=6),
    st.integers(1000, 6000),
)
def test_build_plan_always_covers_horizon(initial, raw_decisions, horizon):
    decisions = sorted(raw_decisions, key=lambda d: d[0])
    plan = build_plan(horizon, initial, decisions, allow_overlap_trim=True)
    t = 0
    for seg in plan.segments:
        assert seg.t_start == t
        t = seg.t_end
    assert t == horizon
    # reconfiguration windows never overlap
    for x, y in zip(plan.reconfigurations[:-1], plan.reconfigurations[1:]):
        assert y.decided_at >= x.completes_at
