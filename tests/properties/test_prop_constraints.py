"""Property-based tests for node-bounded combinations."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import Combination, CombinationError, ideal_table
from repro.core.constraints import bounded_nodes_combination, bounded_nodes_table
from repro.core.profiles import ArchitectureProfile, table_i_profiles

TRIO = tuple(
    p for p in table_i_profiles() if p.name in ("paravance", "chromebook", "raspberry")
)


@st.composite
def small_family(draw):
    """2-3 architectures with small integer capacities for brute forcing."""
    n = draw(st.integers(2, 3))
    perfs = sorted(
        draw(st.lists(st.integers(2, 15), min_size=n, max_size=n, unique=True)),
        reverse=True,
    )
    profs = []
    for i, pf in enumerate(perfs):
        idle = draw(st.floats(0.0, 10.0))
        mx = idle + draw(st.floats(0.1, 20.0))
        profs.append(
            ArchitectureProfile(
                name=f"m{i}", max_perf=float(pf), idle_power=idle, max_power=mx
            )
        )
    return profs


@settings(max_examples=30, deadline=None)
@given(small_family(), st.integers(1, 4), st.integers(1, 40))
def test_bounded_matches_brute_force(profs, budget, rate):
    best = np.inf
    for counts in itertools.product(range(budget + 1), repeat=len(profs)):
        if not 0 < sum(counts) <= budget:
            continue
        combo = Combination.of(dict(zip(profs, counts)))
        if combo.capacity >= rate:
            best = min(best, combo.power(float(rate)))
    try:
        got = bounded_nodes_combination(float(rate), profs, budget)
    except CombinationError:
        assert best == np.inf
        return
    assert got.total_nodes <= budget
    assert got.capacity >= rate
    assert got.power(float(rate)) == pytest.approx(best)


@given(st.integers(1, 10), st.integers(1, 10))
def test_table_monotone_in_budget(b1, b2):
    tight, loose = sorted([b1, b2])
    t_tight = bounded_nodes_table(TRIO, 300.0, tight)
    t_loose = bounded_nodes_table(TRIO, 300.0, loose)
    assert np.all(t_loose <= t_tight + 1e-9)


@given(st.integers(5, 60))
def test_generous_budget_matches_unconstrained(budget):
    free = ideal_table(TRIO, 200.0)
    bounded = bounded_nodes_table(TRIO, 200.0, max(budget, 30))
    assert np.allclose(free, bounded)
