"""Property-based tests for node-bounded combinations."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import Combination, CombinationError, ideal_table
from repro.core.constraints import (
    _constrained_counts_reference,
    _solve_bounded,
    _solve_bounded_reference,
    bounded_nodes_combination,
    bounded_nodes_table,
    constrained_table,
)
from repro.core.profiles import ArchitectureProfile, table_i_profiles
from repro.sim.application import ApplicationSpec

#: The property suites pin the bit-identity contracts cheaply; they are
#: part of the `quick` iteration subset (benchmarks/run_quick.py).
pytestmark = pytest.mark.quick

TRIO = tuple(
    p for p in table_i_profiles() if p.name in ("paravance", "chromebook", "raspberry")
)


@st.composite
def small_family(draw):
    """2-3 architectures with small integer capacities for brute forcing."""
    n = draw(st.integers(2, 3))
    perfs = sorted(
        draw(st.lists(st.integers(2, 15), min_size=n, max_size=n, unique=True)),
        reverse=True,
    )
    profs = []
    for i, pf in enumerate(perfs):
        idle = draw(st.floats(0.0, 10.0))
        mx = idle + draw(st.floats(0.1, 20.0))
        profs.append(
            ArchitectureProfile(
                name=f"m{i}", max_perf=float(pf), idle_power=idle, max_power=mx
            )
        )
    return profs


@settings(max_examples=30, deadline=None)
@given(small_family(), st.integers(1, 4), st.integers(1, 40))
def test_bounded_matches_brute_force(profs, budget, rate):
    best = np.inf
    for counts in itertools.product(range(budget + 1), repeat=len(profs)):
        if not 0 < sum(counts) <= budget:
            continue
        combo = Combination.of(dict(zip(profs, counts)))
        if combo.capacity >= rate:
            best = min(best, combo.power(float(rate)))
    try:
        got = bounded_nodes_combination(float(rate), profs, budget)
    except CombinationError:
        assert best == np.inf
        return
    assert got.total_nodes <= budget
    assert got.capacity >= rate
    assert got.power(float(rate)) == pytest.approx(best)


@given(st.integers(1, 10), st.integers(1, 10))
def test_table_monotone_in_budget(b1, b2):
    tight, loose = sorted([b1, b2])
    t_tight = bounded_nodes_table(TRIO, 300.0, tight)
    t_loose = bounded_nodes_table(TRIO, 300.0, loose)
    assert np.all(t_loose <= t_tight + 1e-9)


@given(st.integers(5, 60))
def test_generous_budget_matches_unconstrained(budget):
    free = ideal_table(TRIO, 200.0)
    bounded = bounded_nodes_table(TRIO, 200.0, max(budget, 30))
    assert np.allclose(free, bounded)


class TestBoundedVectorizedEquivalence:
    """PR 2 contract: the argmin-reduced layer DP and the pointer-doubling
    table reconstruction are bit-identical to the reference formulations."""

    @settings(max_examples=25, deadline=None)
    @given(small_family(), st.integers(0, 120), st.integers(1, 6))
    def test_solve_bounded_matches_reference(self, profs, max_units, budget):
        fast = _solve_bounded(profs, max_units, 1.0, budget)
        ref = _solve_bounded_reference(profs, max_units, 1.0, budget)
        for got, want in zip(fast, ref):
            if isinstance(got, np.ndarray):
                assert np.array_equal(got, want)
            else:
                assert got == want

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_constrained_table_matches_per_rate_reference(self, data):
        profs = data.draw(small_family())
        budget = data.draw(st.one_of(st.none(), st.integers(1, 5)))
        min_inst = data.draw(st.integers(1, 3))
        if budget is not None and min_inst > budget:
            min_inst = budget
        spec = ApplicationSpec(min_instances=min_inst, max_instances=budget)
        cap = max(p.max_perf for p in profs) * (budget or 8)
        max_units = data.draw(st.integers(0, int(cap)))
        try:
            table = constrained_table(profs, spec, float(max_units), 1.0)
        except CombinationError:
            with pytest.raises(CombinationError):
                _constrained_counts_reference(profs, spec, max_units, 1.0)
            return
        combos = _constrained_counts_reference(profs, spec, max_units, 1.0)
        assert all(a == b for a, b in zip(table._combos, combos))
        ref_power = np.array(
            [c.power(float(k)) for k, c in enumerate(combos)]
        )
        assert np.array_equal(table.power_array, ref_power)

    def test_trio_constrained_table_bit_identical(self):
        spec = ApplicationSpec(min_instances=2, max_instances=6)
        table = constrained_table(TRIO, spec, 2000.0, 1.0)
        combos = _constrained_counts_reference(TRIO, spec, 2000, 1.0)
        assert all(a == b for a, b in zip(table._combos, combos))
        for combo in table._combos:
            # padding raises totals to min_instances (2), never past the
            # DP's max_instances budget (6)
            assert not combo or 2 <= combo.total_nodes <= 6
