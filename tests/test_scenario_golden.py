"""Golden pinning for the non-paper scenario catalogue.

The paper's four Fig. 5 scenarios are pinned against ``run_fig5``
(``tests/test_scenarios.py``); this file pins everything else.  Each
registry scenario's headline metrics — distilled through the unified
:class:`repro.results.ScenarioResult` record at one replayed day — are
checked in as ``tests/golden/scenario_catalogue.json`` and must match
**bit-identically**: any numeric drift in the schedulers, kernels or
replay engines shows up here as a diff against the golden file instead
of silently shifting the catalogue.

When a change is *intentional* (a new scenario, a deliberate behaviour
change), regenerate and commit the golden file::

    PYTHONPATH=src python tests/test_scenario_golden.py --regen

File-backed scenarios (``wc98``/``csv``/``npz`` sources) are excluded
*unconditionally* — their metrics depend on whatever files a machine
happens to hold, so pinning them would break the golden file the moment
someone drops archive logs under ``data/wc98/`` (they are end-to-end
tested against synthetic logs in ``tests/test_scenarios.py`` instead).
The golden set and the synthetic catalogue must agree exactly.
"""

import json
from pathlib import Path

import pytest

from repro import scenarios
from repro.results import HEADLINE_METRICS

GOLDEN_PATH = (
    Path(__file__).resolve().parent / "golden" / "scenario_catalogue.json"
)

#: Day count every catalogue scenario is pinned at (kept tiny: the point
#: is numeric identity, not paper-scale statistics).
GOLDEN_DAYS = 1


#: Sources whose traces come from machine-local files; never pinned.
FILE_BACKED_SOURCES = ("wc98", "csv", "npz")


def catalogue_specs():
    """The synthetic non-paper catalogue, shrunk to ``GOLDEN_DAYS``."""
    return [
        spec.with_days(GOLDEN_DAYS)
        for spec in scenarios.specs()
        if "paper" not in spec.tags
        and spec.workload.source not in FILE_BACKED_SOURCES
    ]


def compute_catalogue_metrics():
    """name -> headline-metric dict for every runnable catalogue entry."""
    runs = scenarios.run_suite(catalogue_specs())
    return {run.name: run.to_record().metrics() for run in runs}


class TestCatalogueGolden:
    def test_golden_file_checked_in(self):
        assert GOLDEN_PATH.exists(), (
            "tests/golden/scenario_catalogue.json is missing; regenerate "
            "with: PYTHONPATH=src python tests/test_scenario_golden.py --regen"
        )

    def test_catalogue_matches_golden_bit_identically(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden["days"] == GOLDEN_DAYS
        assert golden["metrics"] == list(HEADLINE_METRICS)
        current = compute_catalogue_metrics()
        assert sorted(current) == sorted(golden["scenarios"]), (
            "the runnable catalogue and the golden file disagree on the "
            "scenario set; regenerate with --regen"
        )
        for name, metrics in current.items():
            assert metrics == golden["scenarios"][name], (
                f"{name}: headline metrics drifted from the golden pin; "
                "if intentional, regenerate with --regen"
            )


def regen() -> Path:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": (
            "Golden headline metrics of the non-paper scenario catalogue "
            "(1 replayed day each), distilled via repro.results."
            "ScenarioResult. Regenerate with: PYTHONPATH=src python "
            "tests/test_scenario_golden.py --regen"
        ),
        "days": GOLDEN_DAYS,
        "metrics": list(HEADLINE_METRICS),
        "scenarios": compute_catalogue_metrics(),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return GOLDEN_PATH


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="regenerate the catalogue golden file"
    )
    parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite tests/golden/scenario_catalogue.json from the "
        "current catalogue",
    )
    args = parser.parse_args()
    if not args.regen:
        parser.error("pass --regen to rewrite the golden file")
    print(f"wrote {regen()}")
