"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestDesign:
    def test_table1_source(self, capsys):
        assert main(["design"]) == 0
        out = capsys.readouterr().out
        assert "paravance" in out and "threshold=529" in out

    def test_illustrative_source(self, capsys):
        assert main(["design", "--source", "illustrative"]) == 0
        out = capsys.readouterr().out
        assert "removed: D" in out


class TestCombination:
    def test_prints_combinations(self, capsys):
        assert main(["combination", "5", "1400"]) == 0
        out = capsys.readouterr().out
        assert "1xraspberry" in out
        assert "1xparavance + 2xchromebook + 1xraspberry" in out

    def test_ideal_method(self, capsys):
        assert main(["combination", "100", "--method", "ideal"]) == 0
        assert "ideal" in capsys.readouterr().out


class TestProfile:
    def test_profile_command(self, capsys):
        assert main(["profile", "--noise", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "raspberry" in out


class TestSimulate:
    def test_two_day_simulation(self, capsys, tmp_path):
        assert (
            main(
                [
                    "simulate", "--days", "2", "--seed", "5",
                    "--csv", str(tmp_path / "out"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UpperBound Global" in out
        assert "lower bound" in out
        assert (tmp_path / "out" / "fig5_daily_energy.csv").exists()
        assert (tmp_path / "out" / "fig5_summary.csv").exists()


class TestExperiment:
    @pytest.mark.parametrize("name", ["fig1", "fig2", "fig3", "fig4"])
    def test_figure_experiments(self, capsys, name):
        assert main(["experiment", name]) == 0
        assert name in capsys.readouterr().out

    def test_fig_csv_dump(self, capsys, tmp_path):
        assert main(["experiment", "fig4", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig4.csv").exists()

    def test_table1_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig5_experiment_short(self, capsys):
        assert main(["experiment", "fig5", "--days", "2"]) == 0
        assert "Big-Medium-Little" in capsys.readouterr().out


class TestSimulatePolicy:
    def test_transition_aware_flag(self, capsys):
        assert main(["simulate", "--days", "1", "--policy", "transition-aware"]) == 0
        assert "Big-Medium-Little" in capsys.readouterr().out


class TestScenario:
    def test_list_shows_registry(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-bml" in out
        assert "power-capped" in out

    def test_list_filters_by_tag(self, capsys):
        assert main(["scenario", "list", "--tag", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "paper-lower-bound" in out
        assert "power-capped" not in out

    def test_show_emits_round_trippable_json(self, capsys):
        import json

        from repro import scenarios

        assert main(["scenario", "show", "noisy-prediction"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert scenarios.ScenarioSpec.from_dict(data) == scenarios.get(
            "noisy-prediction"
        )

    def test_show_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "show", "nope"])

    def test_run_requires_names_or_all(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])

    def test_run_rejects_names_combined_with_all(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run", "paper-bml", "--all"])

    def test_run_with_days_override_and_csv(self, capsys, tmp_path):
        assert (
            main(
                [
                    "scenario", "run", "pattern-steady", "paper-lower-bound",
                    "--days", "1", "--csv", str(tmp_path / "out"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pattern-steady" in out and "paper-lower-bound" in out
        assert (tmp_path / "out" / "scenario_daily_energy.csv").exists()
        assert (tmp_path / "out" / "scenario_summary.csv").exists()


class TestScenarioStoreCommands:
    def test_run_save_then_report(self, capsys, tmp_path):
        store = tmp_path / "runs"
        assert (
            main(["scenario", "run", "pattern-steady", "--save", str(store)])
            == 0
        )
        out = capsys.readouterr().out
        assert "saved 0001-pattern-steady" in out
        assert (store / "0001-pattern-steady" / "result.json").exists()
        assert (store / "0001-pattern-steady" / "series.npz").exists()
        assert main(["scenario", "report", "--store", str(store)]) == 0
        assert "pattern-steady" in capsys.readouterr().out

    def test_report_csv_dump(self, capsys, tmp_path):
        store = tmp_path / "runs"
        assert (
            main(["scenario", "run", "pattern-steady", "--save", str(store)])
            == 0
        )
        assert (
            main(
                [
                    "scenario", "report", "--store", str(store),
                    "--csv", str(tmp_path / "out"),
                ]
            )
            == 0
        )
        assert (tmp_path / "out" / "report_daily_energy.csv").exists()
        assert (tmp_path / "out" / "report_summary.csv").exists()

    def test_simulate_save_stores_the_four_scenarios(self, capsys, tmp_path):
        from repro.results import RunStore

        store = tmp_path / "runs"
        assert (
            main(
                ["simulate", "--days", "1", "--seed", "5", "--save", str(store)]
            )
            == 0
        )
        assert "saved" in capsys.readouterr().out
        assert [s.name for s in RunStore(store).list()] == [
            "paper-upper-global",
            "paper-upper-perday",
            "paper-bml",
            "paper-lower-bound",
        ]

    def test_diff_json_and_csv_export(self, capsys, tmp_path):
        import json

        store = tmp_path / "runs"
        for _ in range(2):
            assert (
                main(
                    ["scenario", "run", "pattern-steady", "--save", str(store)]
                )
                == 0
            )
        capsys.readouterr()
        json_path = tmp_path / "artifacts" / "diff.json"
        csv_path = tmp_path / "artifacts" / "diff.csv"
        assert (
            main(
                [
                    "scenario", "diff",
                    "0001-pattern-steady", "0002-pattern-steady",
                    "--store", str(store),
                    "--json", str(json_path), "--csv", str(csv_path),
                ]
            )
            == 0
        )
        payload = json.loads(json_path.read_text())
        assert payload["identical"] is True
        assert payload["a"]["name"] == "pattern-steady"
        assert {m["metric"] for m in payload["metrics"]} >= {
            "total_energy_j", "served_fraction",
        }
        header = csv_path.read_text().splitlines()[0]
        assert header.split(",")[:3] == ["kind", "name", "a"]

    def test_diff_json_to_stdout(self, capsys, tmp_path):
        import json

        store = tmp_path / "runs"
        assert (
            main(["scenario", "run", "pattern-steady", "--save", str(store)])
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "scenario", "diff",
                    "0001-pattern-steady", "0001-pattern-steady",
                    "--store", str(store), "--json", "-",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True

    def test_report_prune_applies_retention(self, capsys, tmp_path):
        from repro.results import RunStore

        store = tmp_path / "runs"
        for _ in range(3):
            assert (
                main(
                    ["scenario", "run", "pattern-steady", "--save", str(store)]
                )
                == 0
            )
        capsys.readouterr()
        assert (
            main(
                [
                    "scenario", "report", "--store", str(store), "--prune", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pruned 2 run(s)" in out
        assert [s.run_id for s in RunStore(store).list()] == [
            "0003-pattern-steady"
        ]

    def test_report_prune_rejects_zero(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "scenario", "report",
                    "--store", str(tmp_path), "--prune", "0",
                ]
            )


class TestCacheStats:
    def test_table_output_after_a_run(self, capsys):
        from repro import scenarios

        scenarios.run_scenario(scenarios.get("pattern-steady").with_days(1))
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "cache telemetry" in out
        assert "infrastructure[" in out
        assert "breakpoint_tables" in out
        assert "serving_set_kernels" in out
        assert "predictor_series" in out
        assert "shared-memory trace fan-out" in out
        assert "segments_created" in out

    def test_json_output_shape(self, capsys):
        import json

        assert main(["cache-stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "infrastructure", "breakpoint_tables", "serving_set_kernels",
            "predictor_series", "shared_memory",
        }
        for section in (
            "breakpoint_tables", "serving_set_kernels", "predictor_series"
        ):
            assert "table_cache_hits" in payload[section]
            assert "table_cache_maxsize" in payload[section]
        assert "rebuilds" in payload["predictor_series"]
        shm = payload["shared_memory"]
        for counter in (
            "segments_created", "segments_live", "bytes_attached",
            "trace_builds", "worker_trace_builds", "bytes_pickle_avoided",
        ):
            assert counter in shm


class TestTrace:
    def test_npz_output(self, capsys, tmp_path):
        out = tmp_path / "t.npz"
        assert main(["trace", str(out), "--days", "1", "--seed", "2"]) == 0
        assert out.exists()
        from repro.workload import LoadTrace

        trace = LoadTrace.from_npz(out)
        assert trace.n_days == 1

    def test_csv_output(self, capsys, tmp_path):
        out = tmp_path / "t.csv"
        assert main(["trace", str(out), "--days", "1", "--peak", "800"]) == 0
        from repro.workload import LoadTrace

        trace = LoadTrace.from_csv(out)
        assert trace.peak == pytest.approx(800.0, rel=1e-6)

    def test_wc98_binary_output(self, capsys, tmp_path):
        out = tmp_path / "t.npz"
        assert main(
            ["trace", str(out), "--days", "1", "--wc98-binary"]
        ) == 0
        logs = list(tmp_path.glob("t_day*.log.gz"))
        assert len(logs) == 1
        from repro.workload import read_trace

        replayed = read_trace(logs)
        assert replayed.total_demand > 0

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "t.parquet"), "--days", "1"])


@pytest.mark.quick
class TestEngineFlag:
    """PR 6: the two-phase engine and its stats exposed from the CLI."""

    def test_simulate_engine_and_stats(self, capsys):
        assert (
            main(
                [
                    "simulate", "--days", "1", "--engine", "twophase",
                    "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replay statistics" in out
        assert "twophase" in out
        assert "serving_sets" in out

    def test_simulate_stats_without_engine_notes_fast_path(self, capsys):
        assert main(["simulate", "--days", "1", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "fast plan executor" in out

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--days", "1", "--engine", "warp"])

    def test_scenario_run_engine_and_stats(self, capsys):
        assert (
            main(
                [
                    "scenario", "run", "paper-bml", "paper-lower-bound",
                    "--days", "1", "--engine", "segments", "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # the baseline keeps its engine, with a notice
        assert "unchanged: paper-lower-bound" in out
        assert "replay statistics" in out
        assert "segments" in out


class TestScenarioRunFaultTolerance:
    """PR 7: exit codes 0/2/1 and the failure/resume surfaces."""

    def _persistent(self, name):
        from repro import faults

        return faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", name, fail_attempts=faults.ALWAYS),
            )
        )

    def test_keep_going_exits_2_with_failures_on_stderr(self, capsys):
        from repro import faults

        with faults.injected(self._persistent("pattern-steady")):
            code = main(
                [
                    "scenario", "run", "pattern-steady", "pattern-flashcrowd",
                    "--days", "1", "--keep-going",
                ]
            )
        assert code == 2
        captured = capsys.readouterr()
        assert "pattern-flashcrowd" in captured.out  # survivor reported
        assert "failures (1)" in captured.err
        assert "InjectedFault" in captured.err
        assert "pattern-steady" in captured.err

    def test_fatal_failure_exits_1(self, capsys):
        from repro import faults

        with faults.injected(self._persistent("pattern-steady")):
            code = main(
                ["scenario", "run", "pattern-steady", "--days", "1"]
            )
        assert code == 1
        captured = capsys.readouterr()
        assert "scenario run failed: InjectedFault" in captured.err

    def test_all_clean_exits_0(self, capsys):
        assert (
            main(["scenario", "run", "pattern-steady", "--days", "1"]) == 0
        )
        captured = capsys.readouterr()
        assert "failures" not in captured.err

    def test_retries_recover_a_transient_failure(self, capsys):
        from repro import faults

        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "pattern-steady", fail_attempts=1),
            )
        )
        with faults.injected(plan):
            code = main(
                [
                    "scenario", "run", "pattern-steady",
                    "--days", "1", "--retries", "2",
                ]
            )
        assert code == 0
        assert "pattern-steady" in capsys.readouterr().out

    def test_invalid_retries_rejected(self):
        with pytest.raises(SystemExit, match="max_attempts"):
            main(
                [
                    "scenario", "run", "pattern-steady",
                    "--days", "1", "--retries", "0",
                ]
            )

    def test_resume_requires_save(self):
        with pytest.raises(SystemExit, match="--resume requires --save"):
            main(
                ["scenario", "run", "pattern-steady", "--days", "1", "--resume"]
            )

    def test_resume_skips_stored_and_reruns_failures(self, capsys, tmp_path):
        from repro import faults

        store = tmp_path / "runs"
        with faults.injected(self._persistent("pattern-flashcrowd")):
            code = main(
                [
                    "scenario", "run", "pattern-steady", "pattern-flashcrowd",
                    "--days", "1", "--keep-going", "--save", str(store),
                ]
            )
        assert code == 2
        first = capsys.readouterr()
        assert "saved 0001-pattern-steady" in first.out
        assert (store / "0001-pattern-steady" / "result.json").exists()
        assert not (store / "0002-pattern-flashcrowd").exists()

        # fault cleared: resume re-runs only the failed scenario
        code = main(
            [
                "scenario", "run", "pattern-steady", "pattern-flashcrowd",
                "--days", "1", "--save", str(store), "--resume",
            ]
        )
        assert code == 0
        second = capsys.readouterr()
        assert "resumed from store (skipped): pattern-steady" in second.out
        assert "saved 0002-pattern-flashcrowd" in second.out
        assert "saved 0001-pattern-steady" not in second.out


class TestSweepCLI:
    @pytest.fixture()
    def tiny_sweep(self):
        """A registered 2x2 grid over the cheap pattern workload.

        Registration is undone afterwards: the sweep registry is
        process-global, and leaving a test grid behind would change
        ``scenarios.sweeps()`` for later tests (the golden catalogue
        pin in particular).
        """
        from repro import scenarios
        from repro.scenarios import registry

        sweep = scenarios.SweepSpec(
            name="cli-test-grid",
            base="pattern-steady",
            axes=(
                ("policy", ("bml", "upper-global")),
                ("seed", (1, 2)),
            ),
        )
        scenarios.register_sweep(sweep, replace=True)
        yield sweep
        registry._SWEEPS.pop("cli-test-grid", None)

    def test_list_shows_registered_sweeps(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "grid-smoke" in out
        assert "fleet-grid" in out
        assert "sweep registry" in out

    def test_show_emits_round_trippable_json(self, capsys):
        import json

        from repro.scenarios import SweepSpec

        assert main(["sweep", "show", "grid-smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        clone = SweepSpec.from_dict(payload)
        assert clone.name == "grid-smoke"
        assert clone.size == 8

    def test_show_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit, match="unknown sweep"):
            main(["sweep", "show", "no-such-grid"])

    def test_expand_prints_the_grid(self, capsys, tiny_sweep):
        assert main(["sweep", "expand", "cli-test-grid"]) == 0
        out = capsys.readouterr().out
        assert "4/4 points" in out
        assert "cli-test-grid+policy=bml+seed=1" in out
        assert "cli-test-grid+policy=upper-global+seed=2" in out

    def test_expand_json_is_from_dict_compatible(self, capsys, tiny_sweep):
        import json

        from repro.scenarios import ScenarioSpec

        assert main(
            ["sweep", "expand", "cli-test-grid", "--limit", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        specs = [ScenarioSpec.from_dict(d) for d in payload]
        assert specs[0].name == "cli-test-grid+policy=bml+seed=1"

    def test_expand_rejects_bad_limit(self, tiny_sweep):
        with pytest.raises(SystemExit, match="--limit"):
            main(["sweep", "expand", "cli-test-grid", "--limit", "0"])

    def test_run_saves_and_facets(self, capsys, tmp_path, tiny_sweep):
        store = tmp_path / "runs"
        assert (
            main(
                [
                    "sweep", "run", "cli-test-grid",
                    "--save", str(store), "--facet", "policy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep cli-test-grid" in out
        assert "facet: policy" in out
        assert "saved 4 run(s)" in out
        stored = sorted(p.name for p in store.iterdir())
        assert len(stored) == 4
        assert any("cli-test-grid+policy=bml+seed=1" in s for s in stored)

    def test_run_resume_requires_save(self, tiny_sweep):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["sweep", "run", "cli-test-grid", "--resume"])


class TestFederatedReport:
    def test_multi_store_report_federates(self, capsys, tmp_path):
        store_a = tmp_path / "a"
        store_b = tmp_path / "b"
        assert (
            main(["scenario", "run", "pattern-steady", "--days", "1",
                  "--save", str(store_a)]) == 0
        )
        assert (
            main(["scenario", "run", "pattern-flashcrowd", "--days", "1",
                  "--save", str(store_b)]) == 0
        )
        capsys.readouterr()
        assert (
            main(["scenario", "report",
                  "--store", str(store_a), "--store", str(store_b)]) == 0
        )
        out = capsys.readouterr().out
        assert "pattern-steady" in out
        assert "pattern-flashcrowd" in out
        assert str(store_a) in out and str(store_b) in out

    def test_multi_store_prune_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="prune"):
            main(
                ["scenario", "report", "--store", str(tmp_path / "a"),
                 "--store", str(tmp_path / "b"), "--prune", "1"]
            )

    def test_missing_name_reports_all_roots(self, capsys, tmp_path):
        store_a = tmp_path / "a"
        store_b = tmp_path / "b"
        assert (
            main(["scenario", "run", "pattern-steady", "--days", "1",
                  "--save", str(store_a)]) == 0
        )
        assert (
            main(["scenario", "run", "pattern-steady", "--days", "1",
                  "--save", str(store_b)]) == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no stored run for"):
            main(["scenario", "report", "no-such-scenario",
                  "--store", str(store_a), "--store", str(store_b)])
