"""Constants shared by the serve test modules (importable by name
because pytest puts this directory on ``sys.path``)."""

#: Small prediction window so tests cross many chunk boundaries fast.
WINDOW = 60
