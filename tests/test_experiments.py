"""Integration tests for the packaged experiments (E1..E6)."""

import numpy as np
import pytest

from repro import experiments
from repro.profiling.harness import ProfilingCampaign


class TestTable1:
    def test_returns_five_reports(self):
        reports = experiments.run_table1(ProfilingCampaign(wattmeter_noise=0.0))
        assert [r.profile.name for r in reports] == [
            "paravance", "taurus", "graphene", "chromebook", "raspberry",
        ]


class TestFigures:
    def test_fig1(self):
        fig = experiments.run_fig1()
        assert fig.figure == "fig1"
        assert fig.annotations["kept"] == ["A", "B", "C"]

    def test_fig2(self):
        fig = experiments.run_fig2()
        assert fig.annotations["step4_thresholds"]["A"] > 151.0

    def test_fig3(self):
        fig = experiments.run_fig3()
        assert len(fig.series) == 5

    def test_fig4(self):
        fig = experiments.run_fig4()
        assert fig.annotations["thresholds"]["paravance"] == 529.0

    def test_fig4_ideal_method(self):
        fig = experiments.run_fig4(method="ideal")
        assert fig.annotations["method"] == "ideal"


class TestFig5:
    @pytest.fixture(scope="class")
    def outcome(self):
        return experiments.run_fig5(n_days=2, seed=3)

    def test_scenario_ordering(self, outcome):
        assert (
            outcome.upper_global.total_energy
            > outcome.upper_per_day.total_energy
            >= outcome.bml.total_energy
            > outcome.lower_bound.total_energy
        )

    def test_scenario_names_match_paper(self, outcome):
        names = [r.scenario for r in outcome.results]
        assert names == [
            "UpperBound Global",
            "UpperBound PerDay",
            "Big-Medium-Little",
            "LowerBound Theoretical",
        ]

    def test_overhead_positive_every_day(self, outcome):
        assert np.all(outcome.overhead.per_day > 0)

    def test_qos_served(self, outcome):
        assert outcome.bml.qos(outcome.trace).served_fraction > 0.999

    def test_summary_rows(self, outcome):
        rows = outcome.summary_rows()
        assert len(rows) == 4
        assert {"scenario", "energy_kwh", "reconfigs"} <= set(rows[0])

    def test_figure_series(self, outcome):
        fig = outcome.figure()
        assert set(fig.series) == {
            "UpperBound Global",
            "UpperBound PerDay",
            "Big-Medium-Little",
            "LowerBound Theoretical",
        }
        days, _ = fig.series["Big-Medium-Little"]
        assert len(days) == 2

    def test_accepts_custom_trace(self, infra, short_trace):
        out = experiments.run_fig5(trace=short_trace, infra=infra)
        assert out.trace is short_trace


class TestSeedRobustness:
    """The Fig. 5 shape must not depend on one lucky trace realisation."""

    @pytest.mark.parametrize("seed", [3, 17])
    def test_ordering_holds_across_seeds(self, seed):
        out = experiments.run_fig5(n_days=3, seed=seed)
        assert (
            out.upper_global.total_energy
            > out.upper_per_day.total_energy
            > out.bml.total_energy
            > out.lower_bound.total_energy
        )
        assert out.overhead.mean > 0
        assert out.bml.qos(out.trace).served_fraction > 0.999


class TestPolicies:
    def test_transition_aware_policy(self):
        out = experiments.run_fig5(n_days=1, seed=5, policy="transition-aware")
        base = experiments.run_fig5(n_days=1, seed=5, policy="bml")
        assert out.bml.switch_energy <= base.bml.switch_energy + 1e-6
        assert out.bml.total_energy > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            experiments.run_fig5(n_days=1, policy="magic")
