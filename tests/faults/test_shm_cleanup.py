"""Shared-memory segments must survive faults without leaking (PR 8).

The dispatcher owns every published trace segment.  Workers crashing
mid-chunk (taking their attachments with them), workers hanging past
the chunk deadline (pool resurrected underneath live segments) — none
of it may leave a ``repro-trace-*`` entry in ``/dev/shm`` once
``run_suite`` returns: retried chunks re-ship the *same* segment, and
the dispatcher's ``finally`` releases everything after pool teardown.
"""

import glob
import multiprocessing
from dataclasses import replace

import pytest

from repro import faults, scenarios
from repro.scenarios import FailedRun, RetryPolicy
from repro.workload.trace import SHM_PREFIX, shm_stats

START_METHODS = [
    pytest.param("fork", marks=pytest.mark.quick),
    pytest.param("spawn"),
]

TIMEOUT_S = {"fork": 3.0, "spawn": 12.0}


def _skip_unless_available(start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"platform has no {start_method} start method")


def _shm_entries():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


def _suite(n):
    """``n`` scenarios over one workload so a segment is published."""
    base = scenarios.get("pattern-steady").with_days(1)
    return [
        replace(
            base,
            name=f"s{k}",
            scheduler=replace(base.scheduler, window=120 + 60 * k),
        )
        for k in range(n)
    ]


def _assert_no_leak():
    assert shm_stats()["segments_live"] == 0
    leaked = _shm_entries()
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.mark.parametrize("start_method", START_METHODS)
class TestShmCleanupUnderFaults:
    def test_worker_crash_leaves_no_segment(self, start_method):
        _skip_unless_available(start_method)
        specs = _suite(4)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-crash", "s0", fail_attempts=faults.ALWAYS
                ),
            )
        )
        scenarios.clear_caches()
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                chunk_size=1,
                keep_going=True,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            )
        assert [o.name for o in out if isinstance(o, FailedRun)] == ["s0"]
        _assert_no_leak()

    def test_worker_hang_leaves_no_segment(self, start_method):
        _skip_unless_available(start_method)
        specs = _suite(3)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-hang",
                    "s1",
                    fail_attempts=faults.ALWAYS,
                    hang_s=120.0,
                ),
            )
        )
        scenarios.clear_caches()
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                chunk_size=1,
                keep_going=True,
                retry=RetryPolicy(
                    max_attempts=2,
                    timeout_s=TIMEOUT_S[start_method],
                    backoff_s=0.0,
                ),
            )
        assert [o.name for o in out if isinstance(o, FailedRun)] == ["s1"]
        _assert_no_leak()

    def test_survivors_match_sequential_despite_crash(self, start_method):
        _skip_unless_available(start_method)
        specs = _suite(4)
        clean = {
            o.name: o.result.power.tobytes()
            for o in scenarios.run_suite(specs, jobs=1)
        }
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-crash", "s2", fail_attempts=faults.ALWAYS
                ),
            )
        )
        scenarios.clear_caches()
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                chunk_size=1,
                keep_going=True,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            )
        for o in out:
            if not isinstance(o, FailedRun):
                assert o.result.power.tobytes() == clean[o.name]
        _assert_no_leak()
