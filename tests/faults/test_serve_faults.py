"""Streaming fault sites + suite graceful shutdown.

The four serve-side sites (``feed-stall``, ``feed-torn-write``,
``serve-crash``, ``journal-corrupt``) each get their recovery path
exercised: stalls degrade and recover without exiting, torn producer
writes become typed rejections, a ``kill -9``-equivalent crash resumes
to a byte-identical journal, and journal rot is either repaired (torn
tail) or quarantined (acknowledged records).  The suite half covers
``run_suite``'s SIGTERM/SIGINT handling: completed scenarios are flushed
to the store and ``resume=True`` finishes the rest.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro import faults, scenarios
from repro.results import RunStore
from repro.serve import (
    DecisionJournal,
    JournalCorruptError,
    MemorySource,
    ServeConfig,
    ServeDaemon,
    TailFileSource,
    append_feed,
    read_health,
)
from repro.serve.daemon import JOURNAL_FILE

from serve_testlib import WINDOW

pytestmark = pytest.mark.quick


@pytest.fixture(scope="module")
def serve_table(infra):
    return infra.table(3000.0)


def _config(tmp_path, **kw):
    kw.setdefault("feed", tmp_path / "feed.txt")
    kw.setdefault("state_dir", tmp_path / "state")
    kw.setdefault("window", WINDOW)
    kw.setdefault("max_rate", 3000.0)
    kw.setdefault("poll_s", 0.001)
    kw.setdefault("stall_timeout_s", 30.0)
    return ServeConfig(**kw)


class TestFeedStall:
    def test_stall_degrades_and_recovers_without_exit(
        self, tmp_path, serve_table
    ):
        # The first 30 polls yield nothing (the fault eats them), which
        # crosses the stall timeout; the feed then resumes and finishes.
        config = _config(tmp_path, stall_timeout_s=0.005, poll_s=0.001)
        plan = faults.FaultPlan(
            faults=(faults.Fault("feed-stall", "serve", fail_attempts=30),)
        )
        source = MemorySource([[100.0] * WINDOW * 2])
        daemon = ServeDaemon(config, table=serve_table, source=source)
        with faults.injected(plan):
            assert daemon.run() == "done"
        health = read_health(config.state_dir)
        assert health["status"] == "done"
        events = " ".join(health["events"])
        assert "stalled" in events and "resumed after stall" in events

    def test_stall_holds_last_plan(self, tmp_path, serve_table):
        config = _config(tmp_path, stall_timeout_s=0.005, poll_s=0.001)
        plan = faults.FaultPlan(
            faults=(faults.Fault("feed-stall", "serve", fail_attempts=1000),)
        )
        daemon = ServeDaemon(
            config, table=serve_table, source=MemorySource([[100.0] * WINDOW])
        )
        with faults.injected(plan):
            # Budget-bounded: the stalled daemon keeps polling, holding
            # its (empty) plan instead of exiting.
            assert daemon.run(max_polls=40) == "stopped"
        assert read_health(config.state_dir)["status"] == "stopped"
        assert any(
            "stalled" in e for e in read_health(config.state_dir)["events"]
        )


class TestFeedTornWrite:
    def test_torn_producer_write_waits_then_rejects_typed(
        self, tmp_path, serve_table
    ):
        feed = tmp_path / "feed.txt"
        plan = faults.FaultPlan(
            faults=(faults.Fault("feed-torn-write", str(feed), fail_attempts=1),)
        )
        with faults.injected(plan):
            append_feed(feed, [100.0, 200.0])  # final record torn in half
        src = TailFileSource(feed)
        chunk = src.poll()
        # The torn record has no newline: the reader waits, no rejection.
        assert chunk.samples == [100.0] and not chunk.rejected
        # The recovered producer appends again: the torn fragment fuses
        # with the next record into one malformed line -> typed reject.
        append_feed(feed, [300.0], end=True)
        chunk = src.poll()
        assert chunk.finished
        assert len(chunk.rejected) == 1
        assert "malformed feed record" in str(chunk.rejected[0])

    def test_daemon_survives_torn_write(self, tmp_path, serve_table):
        config = _config(tmp_path)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "feed-torn-write", str(config.feed), fail_attempts=1
                ),
            )
        )
        with faults.injected(plan):
            append_feed(config.feed, [100.0] * WINDOW)
        append_feed(config.feed, [100.0] * WINDOW, end=True)
        daemon = ServeDaemon(config, table=serve_table)
        assert daemon.run() == "done"
        assert daemon.rejected == 1
        health = read_health(config.state_dir)
        assert health["rejected"] == 1
        assert any("rejected" in e for e in health["events"])


_CRASH_CHILD = """
import sys
from pathlib import Path
from repro import faults
from repro.serve import ServeConfig, ServeDaemon

tmp = Path(sys.argv[1])
config = ServeConfig(
    feed=tmp / "feed.txt", state_dir=tmp / "state", window={window},
    max_rate=3000.0, poll_s=0.001,
)
plan = faults.FaultPlan(
    faults=(faults.Fault("serve-crash", "serve", fail_attempts=1),)
)
with faults.injected(plan):
    ServeDaemon(config).run()
print("not reached: the crash fault must fire")
sys.exit(99)
""".format(window=WINDOW)


class TestServeCrash:
    def test_crash_then_resume_is_byte_identical(self, tmp_path, serve_table):
        feed = tmp_path / "feed.txt"
        values = [100.0] * WINDOW + [900.0] * WINDOW + [100.0] * WINDOW * 5
        append_feed(feed, values, end=True)

        # Ground truth: the same feed, no crash, separate state dir.
        clean = ServeConfig(
            feed=feed, state_dir=tmp_path / "clean", window=WINDOW,
            max_rate=3000.0, poll_s=0.001,
        )
        assert ServeDaemon(clean, table=serve_table).run() == "done"
        clean_bytes = (clean.state_dir / JOURNAL_FILE).read_bytes()
        assert clean_bytes  # the ramp must generate decisions

        # Generation 0 dies mid-commit: journaled but not checkpointed.
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _CRASH_CHILD, str(tmp_path)],
            cwd=Path(__file__).resolve().parents[2],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 17, proc.stderr  # faults.fire exit code
        crashed = (tmp_path / "state" / JOURNAL_FILE).read_bytes()
        assert crashed  # the crash happened *after* the fsync'd append

        # --resume replays through the journaled prefix (verify, no
        # rewrite) and finishes: byte-identical to the clean run.
        config = ServeConfig(
            feed=feed, state_dir=tmp_path / "state", window=WINDOW,
            max_rate=3000.0, poll_s=0.001,
        )
        daemon = ServeDaemon(config, resume=True, table=serve_table)
        assert daemon.generation == 1
        assert daemon.run() == "done"
        assert (tmp_path / "state" / JOURNAL_FILE).read_bytes() == clean_bytes
        assert read_health(config.state_dir)["status"] == "done"


class TestJournalCorrupt:
    def _journal_with_fault(self, path, n, corrupt_at):
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "journal-corrupt", str(path), fail_attempts=corrupt_at + 1
                ),
            )
        )
        from repro.serve.journal import encode_record

        payloads = [encode_record({"i": i}) for i in range(n)]
        with DecisionJournal(path) as j:
            for i, p in enumerate(payloads):
                if i == corrupt_at:
                    with faults.injected(plan):
                        j.append(i, p)
                else:
                    j.append(i, p)
        return payloads

    def test_rot_on_final_record_truncates_on_reopen(self, tmp_path):
        path = tmp_path / "j.bin"
        self._journal_with_fault(path, n=3, corrupt_at=2)
        with DecisionJournal(path) as j:
            assert j.count == 2  # the rotten tail record was dropped

    def test_rot_behind_acknowledged_records_quarantines(self, tmp_path):
        path = tmp_path / "j.bin"
        self._journal_with_fault(path, n=3, corrupt_at=1)
        with pytest.raises(JournalCorruptError) as exc:
            DecisionJournal(path)
        assert exc.value.index == 1
        assert path.exists()  # evidence preserved


# ---------------------------------------------------------------------------
# run_suite graceful shutdown (SIGTERM/SIGINT)
# ---------------------------------------------------------------------------


def _suite(n=3, days=1):
    base = scenarios.get("pattern-steady").with_days(days)
    return [
        replace(base, name=f"s{k}", workload=replace(base.workload, seed=40 + k))
        for k in range(n)
    ]


class TestSuiteGracefulShutdown:
    RETRY = scenarios.RetryPolicy(max_attempts=1)

    def test_sequential_sigterm_flushes_completed(
        self, tmp_path, short_trace, infra, monkeypatch
    ):
        from repro.scenarios import runner

        store = RunStore(tmp_path)
        specs = _suite(3)
        real = runner.run_scenario
        calls = []

        def run_then_sigterm(spec, **kw):
            calls.append(spec.name)
            out = real(spec, **kw)
            if len(calls) == 1:
                signal.raise_signal(signal.SIGTERM)
            return out

        monkeypatch.setattr(runner, "run_scenario", run_then_sigterm)
        with pytest.raises(scenarios.SuiteInterrupted) as exc:
            scenarios.run_suite(
                specs,
                retry=self.RETRY,
                store=store,
                trace=short_trace,
                infra=infra,
            )
        assert exc.value.signum == signal.SIGTERM
        assert exc.value.completed == 1
        assert exc.value.total == 3
        assert "resume=True" in str(exc.value)
        assert calls == ["s0"]  # s1/s2 never started
        assert len(store.list()) == 1  # the finished run was flushed

        # Resume finishes the remainder without re-running s0.
        monkeypatch.setattr(runner, "run_scenario", real)
        out = scenarios.run_suite(
            specs,
            retry=self.RETRY,
            store=store,
            resume=True,
            trace=short_trace,
            infra=infra,
        )
        assert [o.name for o in out] == ["s0", "s1", "s2"]
        assert len(store.list()) == 3

    def test_pool_sigterm_flushes_completed(self, tmp_path, short_trace, infra):
        import threading

        store = RunStore(tmp_path)
        specs = _suite(4)
        # One spec hangs its worker; the rest complete and get
        # harvested.  SIGTERM lands while the dispatcher waits out the
        # hang, and must not lose the finished scenarios.
        plan = faults.FaultPlan(
            faults=(faults.Fault("worker-hang", "s3", hang_s=60.0),)
        )

        done = threading.Event()

        def fire_when_partial():
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and not done.is_set():
                if len(store.list()) >= 2:
                    os.kill(os.getpid(), signal.SIGTERM)
                    return
                time.sleep(0.05)

        t = threading.Thread(target=fire_when_partial)
        t.start()
        try:
            with faults.injected(plan):
                with pytest.raises(scenarios.SuiteInterrupted) as exc:
                    scenarios.run_suite(
                        specs,
                        jobs=2,
                        chunk_size=1,
                        retry=self.RETRY,
                        store=store,
                        keep_going=True,
                        trace=short_trace,
                        infra=infra,
                    )
        finally:
            done.set()
            t.join()
        assert exc.value.signum == signal.SIGTERM
        assert exc.value.completed >= 2
        saved = {s.name for s in store.list()}
        assert len(saved) >= 2 and "s3" not in saved

    def test_second_signal_escalates(self):
        from repro.scenarios.runner import _graceful_stop

        with _graceful_stop() as stopped:
            assert stopped() is None
            signal.raise_signal(signal.SIGTERM)
            assert stopped() == signal.SIGTERM
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGTERM)
        # Handlers restored: a SIGTERM now uses the default disposition
        # (would kill the process), so just verify ours is gone.
        assert signal.getsignal(signal.SIGTERM) is not None

    def test_wedged_teardown_escalates_to_sigkill(self):
        """A ``Pool.terminate`` that never returns (dead worker holding
        the task queue's reader lock) must not hang the dispatcher: the
        watchdog SIGKILLs the workers and moves on."""
        import multiprocessing

        from repro.scenarios.runner import _teardown_pool

        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(2)
        workers = list(pool._pool)
        real_terminate = pool.terminate
        pool.terminate = lambda: time.sleep(30)  # simulate the wedge
        start = time.monotonic()
        _teardown_pool(pool, grace_s=0.3)
        assert time.monotonic() - start < 5.0  # returned, did not hang
        deadline = time.monotonic() + 5.0
        while any(w.exitcode is None for w in workers):
            assert time.monotonic() < deadline, "workers not killed"
            time.sleep(0.02)
        pool.terminate = real_terminate
        pool.terminate()  # reap any respawned workers
        pool.join()
