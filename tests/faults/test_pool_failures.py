"""Pool-level fault tolerance: crash, hang, retry, resume — fork and spawn.

These tests drive the ``apply_async`` dispatcher behind
``run_suite(jobs>1)`` through its recovery paths with real injected
process failures: workers killed mid-chunk (``os._exit``), workers hung
past the chunk deadline, and transient in-spec exceptions.  The
acceptance contract (ISSUE PR 7): exactly the poisoned specs fail,
survivors are bit-identical to a clean sequential run, and a resumed
suite re-runs only the failures.

Fork runs are quick-marked; spawn runs pay interpreter start-up per
worker (and per pool resurrection) so they ride only in the full suite.
"""

import multiprocessing
from dataclasses import replace

import numpy as np
import pytest

from repro import faults, scenarios
from repro.results import RunStore, ScenarioResult
from repro.scenarios import FailedRun, RetryPolicy, SuiteExecutionError

START_METHODS = [
    pytest.param("fork", marks=pytest.mark.quick),
    pytest.param("spawn"),
]

#: Deadlines generous enough for a clean 2 h-trace scenario (spawn pays
#: worker start-up inside the chunk deadline), tight enough that a hung
#: worker trips them fast.
TIMEOUT_S = {"fork": 3.0, "spawn": 12.0}


def _skip_unless_available(start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"platform has no {start_method} start method")


def _suite(n, days=1):
    base = scenarios.get("pattern-steady").with_days(days)
    return [
        replace(base, name=f"s{k}", workload=replace(base.workload, seed=70 + k))
        for k in range(n)
    ]


def _assert_matches_clean(outcomes, specs, short_trace, infra):
    """Every surviving outcome equals the clean sequential run's."""
    clean = scenarios.run_suite(specs, jobs=1, trace=short_trace, infra=infra)
    for outcome, reference in zip(outcomes, clean):
        if isinstance(outcome, FailedRun):
            continue
        assert outcome.name == reference.name
        if isinstance(outcome, ScenarioResult):  # resumed checkpoint
            want = reference.to_record()
            assert outcome.total_energy_j == want.total_energy_j
            assert outcome.per_day_energy_j == want.per_day_energy_j
        else:
            assert np.array_equal(
                outcome.result.power, reference.result.power
            )
            assert np.array_equal(
                outcome.result.unserved, reference.result.unserved
            )


@pytest.mark.parametrize("start_method", START_METHODS)
class TestWorkerCrash:
    def test_crash_charges_only_the_culprit(
        self, start_method, short_trace, infra
    ):
        _skip_unless_available(start_method)
        specs = _suite(4)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-crash", "s0", fail_attempts=faults.ALWAYS
                ),
            )
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                keep_going=True,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
                trace=short_trace,
                infra=infra,
            )
        failed = [o for o in out if isinstance(o, FailedRun)]
        assert [f.name for f in failed] == ["s0"]
        assert failed[0].error_type == "WorkerCrashed"
        assert failed[0].attempts == 2
        _assert_matches_clean(out, specs, short_trace, infra)

    def test_crash_without_keep_going_raises(
        self, start_method, short_trace, infra
    ):
        _skip_unless_available(start_method)
        specs = _suite(2)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-crash", "s1", fail_attempts=faults.ALWAYS
                ),
            )
        )
        with faults.injected(plan):
            with pytest.raises(SuiteExecutionError) as err:
                scenarios.run_suite(
                    specs,
                    jobs=2,
                    start_method=start_method,
                    retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
                    trace=short_trace,
                    infra=infra,
                )
        assert [f.name for f in err.value.failures] == ["s1"]
        assert err.value.failures[0].error_type == "WorkerCrashed"


@pytest.mark.parametrize("start_method", START_METHODS)
class TestWorkerHang:
    def test_hang_past_deadline_times_out(
        self, start_method, short_trace, infra
    ):
        _skip_unless_available(start_method)
        specs = _suite(3)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-hang",
                    "s1",
                    fail_attempts=faults.ALWAYS,
                    hang_s=120.0,
                ),
            )
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                keep_going=True,
                retry=RetryPolicy(
                    max_attempts=2,
                    timeout_s=TIMEOUT_S[start_method],
                    backoff_s=0.0,
                ),
                trace=short_trace,
                infra=infra,
            )
        failed = [o for o in out if isinstance(o, FailedRun)]
        assert [f.name for f in failed] == ["s1"]
        assert failed[0].error_type == "ChunkTimeout"
        assert "deadline" in failed[0].message
        _assert_matches_clean(out, specs, short_trace, infra)


@pytest.mark.parametrize("start_method", START_METHODS)
class TestRetryRecovers:
    def test_transient_error_succeeds_on_retry(
        self, start_method, short_trace, infra
    ):
        _skip_unless_available(start_method)
        specs = _suite(4)
        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "s1", fail_attempts=1),
                faults.Fault("spec-error", "s3", fail_attempts=1),
            )
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                keep_going=True,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
                trace=short_trace,
                infra=infra,
            )
        assert not [o for o in out if isinstance(o, FailedRun)]
        assert [o.name for o in out] == [s.name for s in specs]
        _assert_matches_clean(out, specs, short_trace, infra)


@pytest.mark.parametrize("start_method", START_METHODS)
class TestResume:
    def test_resume_reruns_only_failures(
        self, start_method, tmp_path, short_trace, infra
    ):
        _skip_unless_available(start_method)
        specs = _suite(4)
        store = RunStore(tmp_path / "runs")
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-crash", "s2", fail_attempts=faults.ALWAYS
                ),
            )
        )
        with faults.injected(plan):
            first = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                keep_going=True,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
                store=store,
                trace=short_trace,
                infra=infra,
            )
        assert [f.name for f in first if isinstance(f, FailedRun)] == ["s2"]
        assert {s.name for s in store.list()} == {"s0", "s1", "s3"}

        # fault cleared: the resumed suite re-runs exactly the failure
        second = scenarios.run_suite(
            specs,
            jobs=2,
            start_method=start_method,
            store=store,
            resume=True,
            trace=short_trace,
            infra=infra,
        )
        assert [type(o).__name__ for o in second] == [
            "ScenarioResult", "ScenarioResult", "ScenarioRun", "ScenarioResult",
        ]
        assert len(store.list()) == 4
        _assert_matches_clean(second, specs, short_trace, infra)


@pytest.mark.parametrize("start_method", START_METHODS)
class TestAcceptanceScenario:
    """The ISSUE PR 7 acceptance run: a seeded plan injecting a worker
    crash, a hang past the deadline and one transient exception into a
    10-spec suite."""

    def test_end_to_end(self, start_method, tmp_path, short_trace, infra):
        _skip_unless_available(start_method)
        specs = _suite(10)
        store = RunStore(tmp_path / "runs")
        plan = faults.FaultPlan(
            faults=(
                faults.Fault(
                    "worker-crash", "s2", fail_attempts=faults.ALWAYS
                ),
                faults.Fault(
                    "worker-hang",
                    "s5",
                    fail_attempts=faults.ALWAYS,
                    hang_s=120.0,
                ),
                faults.Fault("spec-error", "s7", fail_attempts=1),
            ),
            seed=1234,
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                jobs=2,
                start_method=start_method,
                keep_going=True,
                retry=RetryPolicy(
                    max_attempts=2,
                    timeout_s=TIMEOUT_S[start_method],
                    backoff_s=0.0,
                ),
                store=store,
                trace=short_trace,
                infra=infra,
            )

        # exactly the poisoned specs fail; the transient recovered
        failed = {o.name: o for o in out if isinstance(o, FailedRun)}
        assert set(failed) == {"s2", "s5"}
        assert failed["s2"].error_type == "WorkerCrashed"
        assert failed["s5"].error_type == "ChunkTimeout"
        assert isinstance(out[7], scenarios.ScenarioRun)  # retried, succeeded

        # failures surface in the report; survivors aggregate normally
        from repro.results import SuiteReport

        report = SuiteReport.from_runs(out)
        assert len(report.results) == 8
        assert {f.name for f in report.failures} == {"s2", "s5"}

        # survivors are bit-identical to a clean sequential run
        _assert_matches_clean(out, specs, short_trace, infra)
        assert {s.name for s in store.list()} == {
            s.name for s in specs
        } - {"s2", "s5"}

        # faults cleared: resume re-runs exactly the two failures
        second = scenarios.run_suite(
            specs,
            jobs=2,
            start_method=start_method,
            store=store,
            resume=True,
            trace=short_trace,
            infra=infra,
        )
        assert not [o for o in second if isinstance(o, FailedRun)]
        fresh = [o for o in second if isinstance(o, scenarios.ScenarioRun)]
        assert {o.name for o in fresh} == {"s2", "s5"}
        assert len(store.list()) == 10
        _assert_matches_clean(second, specs, short_trace, infra)
