"""Fault-injection harness semantics + in-process recovery paths.

Covers the :mod:`repro.faults` contract itself (plan matching, seeded
determinism, scoped installation, the no-op default) and every recovery
path that does not need a worker pool: sequential retry, graceful
degradation into :class:`FailedRun`, store quarantine of corrupt
checkpoints, trace-read failures, and sequential checkpoint-resume.
The pool-level paths (crash / hang / resurrection) live in
``test_pool_failures.py``.
"""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro import faults, scenarios
from repro.results import QuarantinedRun, RunStore, ScenarioResult
from repro.scenarios import FailedRun, RetryPolicy, SuiteExecutionError
from repro.scenarios.spec import ScenarioError

pytestmark = pytest.mark.quick


def _suite(n=3, days=1):
    base = scenarios.get("pattern-steady").with_days(days)
    return [
        replace(base, name=f"s{k}", workload=replace(base.workload, seed=40 + k))
        for k in range(n)
    ]


# ---------------------------------------------------------------------------
# Plan semantics
# ---------------------------------------------------------------------------


class TestFault:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.Fault("disk-on-fire")

    def test_fail_attempts_validated(self):
        with pytest.raises(ValueError):
            faults.Fault("spec-error", fail_attempts=0)
        with pytest.raises(ValueError):
            faults.Fault("worker-hang", hang_s=0.0)

    def test_transient_fires_only_below_fail_attempts(self):
        fault = faults.Fault("spec-error", "s0", fail_attempts=1)
        assert fault.matches("spec-error", "s0", 0)
        assert not fault.matches("spec-error", "s0", 1)  # the retry succeeds

    def test_persistent_outlives_any_retry_budget(self):
        fault = faults.Fault("spec-error", "s0", fail_attempts=faults.ALWAYS)
        assert fault.matches("spec-error", "s0", 999)

    def test_key_is_fnmatch_pattern(self):
        fault = faults.Fault("spec-error", "bml-*")
        assert fault.matches("spec-error", "bml-87d", 0)
        assert not fault.matches("spec-error", "upper-87d", 0)
        assert not fault.matches("worker-crash", "bml-87d", 0)

    def test_injected_fault_pickles_round_trip(self):
        # A dump-but-not-load exception kills the pool's result-handler
        # thread; the harness's own exception must round-trip cleanly.
        exc = faults.InjectedFault("spec-error", "s1", 2)
        back = pickle.loads(pickle.dumps(exc))
        assert (back.site, back.key, back.attempt) == ("spec-error", "s1", 2)
        assert str(back) == str(exc)


class TestFaultPlan:
    def test_find_returns_first_match(self):
        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "s*", fail_attempts=1),
                faults.Fault("spec-error", "s0", fail_attempts=faults.ALWAYS),
            )
        )
        found = plan.find("spec-error", "s0", 0)
        assert found is plan.faults[0]
        # the broad transient no longer matches attempt 1; the second does
        assert plan.find("spec-error", "s0", 1) is plan.faults[1]
        assert plan.find("spec-error", "s1", 1) is None

    def test_seeded_is_deterministic(self):
        keys = [f"s{k}" for k in range(20)]
        a = faults.FaultPlan.seeded(7, keys, rate=0.3)
        b = faults.FaultPlan.seeded(7, keys, rate=0.3)
        assert a == b
        assert a.seed == 7
        different = faults.FaultPlan.seeded(8, keys, rate=0.3)
        assert {f.key for f in a.faults} != {f.key for f in different.faults}

    def test_seeded_rate_bounds(self):
        keys = ["s0", "s1"]
        assert faults.FaultPlan.seeded(1, keys, rate=0.0).faults == ()
        full = faults.FaultPlan.seeded(1, keys, rate=1.0)
        assert {f.key for f in full.faults} == set(keys)
        with pytest.raises(ValueError):
            faults.FaultPlan.seeded(1, keys, rate=1.5)


class TestInstallation:
    def test_noop_default(self):
        assert faults.active() is None
        assert not faults.check("spec-error", "anything")
        faults.fire("spec-error", "anything")  # must not raise

    def test_injected_scopes_and_restores(self):
        outer = faults.FaultPlan(faults=(faults.Fault("spec-error", "x"),))
        inner = faults.FaultPlan(faults=(faults.Fault("trace-read", "y"),))
        with faults.injected(outer):
            assert faults.active() is outer
            with faults.injected(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_injected_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with faults.injected(faults.FaultPlan()):
                raise RuntimeError("boom")
        assert faults.active() is None

    def test_fire_raises_injected_fault(self):
        plan = faults.FaultPlan(faults=(faults.Fault("spec-error", "s0"),))
        with faults.injected(plan):
            with pytest.raises(faults.InjectedFault):
                faults.fire("spec-error", "s0", 0)
            faults.fire("spec-error", "s1", 0)  # unmatched key: no-op
            faults.fire("spec-error", "s0", 1)  # retry attempt: recovered


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ScenarioError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ScenarioError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ScenarioError):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_delay(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# Sequential recovery paths (jobs=1)
# ---------------------------------------------------------------------------


class TestSequentialRecovery:
    RETRY = RetryPolicy(max_attempts=2, backoff_s=0.0)

    def test_transient_error_recovers_on_retry(self, short_trace, infra):
        specs = _suite()
        plan = faults.FaultPlan(
            faults=(faults.Fault("spec-error", "s1", fail_attempts=1),)
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs, retry=self.RETRY, trace=short_trace, infra=infra
            )
        assert [o.name for o in out] == ["s0", "s1", "s2"]
        assert all(isinstance(o, scenarios.ScenarioRun) for o in out)

    def test_persistent_error_degrades_to_failed_run(self, short_trace, infra):
        specs = _suite()
        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "s1", fail_attempts=faults.ALWAYS),
            )
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                retry=self.RETRY,
                keep_going=True,
                trace=short_trace,
                infra=infra,
            )
        failed = [o for o in out if isinstance(o, FailedRun)]
        assert [f.name for f in failed] == ["s1"]
        assert failed[0].error_type == "InjectedFault"
        assert failed[0].attempts == 2
        assert "injected fault" in failed[0].message
        assert failed[0].traceback  # full traceback captured
        row = failed[0].summary_row()
        assert row["scenario"] == "s1" and row["attempts"] == 2

    def test_fail_fast_reraises_original_exception(self, short_trace, infra):
        specs = _suite()
        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "s0", fail_attempts=faults.ALWAYS),
            )
        )
        with faults.injected(plan):
            with pytest.raises(faults.InjectedFault):
                scenarios.run_suite(
                    specs, retry=self.RETRY, trace=short_trace, infra=infra
                )

    def test_failures_surface_in_suite_report(self, short_trace, infra):
        from repro.results import SuiteReport

        specs = _suite()
        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "s2", fail_attempts=faults.ALWAYS),
            )
        )
        with faults.injected(plan):
            out = scenarios.run_suite(
                specs,
                retry=self.RETRY,
                keep_going=True,
                trace=short_trace,
                infra=infra,
            )
        report = SuiteReport.from_runs(out)
        assert [r.name for r in report.results] == ["s0", "s1"]
        assert [f.name for f in report.failures] == ["s2"]
        rendered = report.render()
        assert "failures (1)" in rendered
        assert "InjectedFault" in rendered

    def test_invalid_option_combinations(self, short_trace, infra):
        specs = _suite(2)
        with pytest.raises(ScenarioError, match="requires a store"):
            scenarios.run_suite(specs, resume=True)
        with pytest.raises(ScenarioError, match="chunked=False"):
            scenarios.run_suite(specs, jobs=2, chunked=False, keep_going=True)


# ---------------------------------------------------------------------------
# Checkpoint / resume (sequential path) + store quarantine
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    RETRY = RetryPolicy(max_attempts=1, backoff_s=0.0)

    def test_resume_skips_completed_specs(self, tmp_path, short_trace, infra):
        specs = _suite()
        store = RunStore(tmp_path / "runs")
        plan = faults.FaultPlan(
            faults=(
                faults.Fault("spec-error", "s1", fail_attempts=faults.ALWAYS),
            )
        )
        with faults.injected(plan):
            first = scenarios.run_suite(
                specs,
                retry=self.RETRY,
                keep_going=True,
                store=store,
                trace=short_trace,
                infra=infra,
            )
        assert [type(o).__name__ for o in first] == [
            "ScenarioRun", "FailedRun", "ScenarioRun",
        ]
        # the two survivors were checkpointed the moment they landed
        assert {s.name for s in store.list()} == {"s0", "s2"}

        # clean resume: only the failed spec re-runs, survivors come back
        # as the stored records
        second = scenarios.run_suite(
            specs, store=store, resume=True, trace=short_trace, infra=infra
        )
        assert isinstance(second[0], ScenarioResult)
        assert isinstance(second[1], scenarios.ScenarioRun)
        assert isinstance(second[2], ScenarioResult)
        assert len(store.list()) == 3

        # resumed records are the same results a clean run would produce
        clean = scenarios.run_suite(specs, trace=short_trace, infra=infra)
        for resumed, fresh in zip(second, clean):
            record = (
                resumed if isinstance(resumed, ScenarioResult)
                else resumed.to_record()
            )
            want = fresh.to_record()
            assert record.total_energy_j == want.total_energy_j
            assert record.per_day_energy_j == want.per_day_energy_j
            assert record.unserved_demand == want.unserved_demand

    def test_corrupt_checkpoint_is_quarantined(self, tmp_path, short_trace, infra):
        specs = _suite()
        store = RunStore(tmp_path / "runs")
        plan = faults.FaultPlan(
            faults=(faults.Fault("corrupt-result", "s1"),)
        )
        with faults.injected(plan):  # torn write on s1's result.json
            scenarios.run_suite(
                specs, store=store, trace=short_trace, infra=infra
            )
        summaries = store.list()
        assert {s.name for s in summaries} == {"s0", "s2"}
        quarantined = store.skipped()
        assert len(quarantined) == 1
        assert isinstance(quarantined[0], QuarantinedRun)
        assert "s1" in quarantined[0].run_id

        # a resumed suite treats the corrupt checkpoint as missing work
        out = scenarios.run_suite(
            specs, store=store, resume=True, trace=short_trace, infra=infra
        )
        assert isinstance(out[1], scenarios.ScenarioRun)
        assert all(o.name == s.name for o, s in zip(out, specs))


# ---------------------------------------------------------------------------
# Trace-read faults
# ---------------------------------------------------------------------------


class TestTraceReadFault:
    def test_wc98_reader_fires_trace_read(self, tmp_path):
        import gzip
        import struct

        from repro.workload.wc98format import read_records

        path = tmp_path / "wc_day1_1.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(struct.pack("<IIIIBBBB", 0, 1, 2, 3, 4, 5, 6, 7))
        assert len(read_records(path)) == 1  # readable without a plan

        plan = faults.FaultPlan(
            faults=(faults.Fault("trace-read", str(path)),)
        )
        with faults.injected(plan):
            with pytest.raises(faults.InjectedFault):
                read_records(path)
