"""Unit tests for the wattmeter emulation."""

import numpy as np
import pytest

from repro.profiling.wattmeter import Wattmeter


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            Wattmeter(sample_interval=0.0)

    def test_bad_noise(self):
        with pytest.raises(ValueError):
            Wattmeter(noise_sigma=-1.0)

    def test_bad_record_duration(self):
        with pytest.raises(ValueError):
            Wattmeter().record(lambda t: 1.0, 0.0)


class TestRecord:
    def test_noise_free_sampling(self):
        meter = Wattmeter(noise_sigma=0.0)
        trace = meter.record(lambda t: 5.0, 10.0)
        assert trace.samples.shape == (10,)
        assert trace.mean_power == 5.0
        assert trace.energy == 50.0
        assert trace.duration == 10.0

    def test_time_varying_signal(self):
        meter = Wattmeter(noise_sigma=0.0)
        trace = meter.record(lambda t: t, 5.0)
        assert list(trace.samples) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_noise_deterministic_per_meter_seed(self):
        a = Wattmeter(noise_sigma=0.5, seed=3).record(lambda t: 10.0, 100.0)
        b = Wattmeter(noise_sigma=0.5, seed=3).record(lambda t: 10.0, 100.0)
        assert np.array_equal(a.samples, b.samples)

    def test_noise_never_negative(self):
        trace = Wattmeter(noise_sigma=5.0, seed=0).record(lambda t: 0.1, 1000.0)
        assert np.all(trace.samples >= 0.0)

    def test_quantisation(self):
        meter = Wattmeter(noise_sigma=0.0, resolution=0.5)
        trace = meter.record(lambda t: 1.26, 4.0)
        assert np.all(trace.samples == 1.5)

    def test_measure_average(self):
        assert Wattmeter(noise_sigma=0.0).measure_average(lambda t: 7.0, 30.0) == 7.0


class TestTransient:
    def test_boot_like_transient_exact(self):
        # 20 s at 50 W, then settles at 10 W
        def power(t):
            return 50.0 if t < 20 else 10.0

        meter = Wattmeter(noise_sigma=0.0)
        duration, energy = meter.measure_transient(power, 60.0, settle_level=10.0)
        assert duration == 20.0
        assert energy == pytest.approx(1000.0)

    def test_transient_below_baseline_detected(self):
        # boots *below* idle (the Raspberry Pi case)
        def power(t):
            return 2.5 if t < 16 else 3.1

        duration, energy = Wattmeter(noise_sigma=0.0).measure_transient(
            power, 60.0, settle_level=3.1
        )
        assert duration == 16.0
        assert energy == pytest.approx(16 * 2.5)

    def test_no_transient_gives_zero(self):
        duration, energy = Wattmeter(noise_sigma=0.0).measure_transient(
            lambda t: 10.0, 30.0, settle_level=10.0
        )
        assert duration == 0.0 and energy == 0.0

    def test_shutdown_to_zero(self):
        def power(t):
            return 65.7 if t < 10 else 0.0

        duration, energy = Wattmeter(noise_sigma=0.0).measure_transient(
            power, 40.0, settle_level=0.0
        )
        assert duration == 10.0
        assert energy == pytest.approx(657.0)
