"""Unit tests for the simulated web server."""

import numpy as np
import pytest

from repro.profiling.hardware import PAPER_HARDWARE
from repro.profiling.webserver import SimulatedWebServer


@pytest.fixture()
def server():
    return SimulatedWebServer(PAPER_HARDWARE["chromebook"])


class TestValidation:
    def test_work_bounds(self):
        with pytest.raises(ValueError):
            SimulatedWebServer(PAPER_HARDWARE["raspberry"], work_low=0.0)
        with pytest.raises(ValueError):
            SimulatedWebServer(
                PAPER_HARDWARE["raspberry"], work_low=200.0, work_high=100.0
            )

    def test_run_params(self, server):
        with pytest.raises(ValueError):
            server.run_closed(0)
        with pytest.raises(ValueError):
            server.run_closed(1, duration_s=0.0)


class TestCapacity:
    def test_max_throughput_matches_table(self, server):
        assert server.max_throughput == pytest.approx(33.0)

    def test_paper_workload_mean(self, server):
        assert server.mean_request_work == 1500.0

    def test_overhead_lowers_capacity(self):
        slow = SimulatedWebServer(
            PAPER_HARDWARE["chromebook"], overhead_work=500.0
        )
        assert slow.max_throughput < 33.0


class TestClosedLoop:
    def test_throughput_grows_with_clients_then_saturates(self, server):
        rng = np.random.default_rng(0)
        x1 = server.run_closed(1, rng=rng).throughput
        x2 = server.run_closed(2, rng=rng).throughput
        x64 = server.run_closed(64, rng=rng).throughput
        assert x2 > x1
        assert x64 == pytest.approx(33.0, rel=0.05)

    def test_utilisation_at_saturation(self, server):
        sample = server.run_closed(128, rng=np.random.default_rng(0))
        assert sample.utilisation == pytest.approx(1.0, abs=0.05)

    def test_latency_reported(self, server):
        s = server.run_closed(10, rng=np.random.default_rng(0))
        assert s.mean_latency_s == pytest.approx(10 / s.throughput)

    def test_deterministic_given_rng(self, server):
        a = server.run_closed(8, rng=np.random.default_rng(3)).throughput
        b = server.run_closed(8, rng=np.random.default_rng(3)).throughput
        assert a == b

    def test_longer_runs_less_noisy(self, server):
        # relative std of repeated 300 s runs < repeated 3 s runs
        def spread(duration):
            rng = np.random.default_rng(5)
            xs = [server.run_closed(64, duration, rng).throughput for _ in range(20)]
            return np.std(xs) / np.mean(xs)

        assert spread(300.0) < spread(3.0)


class TestOpenLoop:
    def test_served_capped_at_capacity(self, server):
        served, util = server.serve_open(100.0)
        assert served == pytest.approx(33.0)
        assert util == pytest.approx(1.0)

    def test_partial_utilisation(self, server):
        served, util = server.serve_open(16.5)
        assert served == 16.5
        assert util == pytest.approx(0.5)

    def test_power_at_rate_is_linear(self, server):
        hw = PAPER_HARDWARE["chromebook"]
        assert server.power_at_rate(0.0) == pytest.approx(hw.idle_power)
        assert server.power_at_rate(33.0) == pytest.approx(hw.max_power)
        assert server.power_at_rate(16.5) == pytest.approx(
            (hw.idle_power + hw.max_power) / 2
        )

    def test_rejects_negative(self, server):
        with pytest.raises(ValueError):
            server.serve_open(-1.0)
