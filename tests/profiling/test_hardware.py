"""Unit tests for the hardware models."""

import numpy as np
import pytest

from repro.core.profiles import TABLE_I
from repro.profiling.hardware import (
    MEAN_REQUEST_WORK,
    PAPER_HARDWARE,
    HardwareModel,
    paper_hardware,
)


class TestValidation:
    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            HardwareModel("x", 0, 1000.0, 1.0, 2.0, 1, 1, 1, 1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            HardwareModel("x", 1, 0.0, 1.0, 2.0, 1, 1, 1, 1)

    def test_rejects_idle_above_max(self):
        with pytest.raises(ValueError):
            HardwareModel("x", 1, 100.0, 5.0, 2.0, 1, 1, 1, 1)


class TestCalibration:
    @pytest.mark.parametrize("name", list(PAPER_HARDWARE))
    def test_true_profile_matches_table_i(self, name):
        hw = PAPER_HARDWARE[name]
        prof = hw.true_profile()
        ref = TABLE_I[name]
        assert prof.max_perf == pytest.approx(ref.max_perf)
        assert prof.idle_power == ref.idle_power
        assert prof.max_power == ref.max_power
        assert prof.on_time == ref.on_time
        assert prof.on_energy == ref.on_energy

    def test_request_capacity_uses_mean_work(self):
        hw = PAPER_HARDWARE["paravance"]
        assert hw.request_capacity() == pytest.approx(
            hw.work_capacity / MEAN_REQUEST_WORK
        )

    def test_paper_order(self):
        names = [h.name for h in paper_hardware()]
        assert names == ["paravance", "taurus", "graphene", "chromebook", "raspberry"]


class TestPowerModel:
    def test_linear_in_utilisation(self):
        hw = PAPER_HARDWARE["paravance"]
        assert hw.power_at_utilisation(0.0) == 69.9
        assert hw.power_at_utilisation(1.0) == 200.5
        mid = hw.power_at_utilisation(0.5)
        assert mid == pytest.approx((69.9 + 200.5) / 2)

    def test_rejects_out_of_range_utilisation(self):
        with pytest.raises(ValueError):
            PAPER_HARDWARE["raspberry"].power_at_utilisation(1.5)

    def test_boot_curve_integrates_to_on_energy(self):
        for hw in paper_hardware():
            # integrate at fine resolution
            ts = np.linspace(0, hw.on_time, 200_000, endpoint=False)
            integral = np.sum([hw.boot_power_curve(float(t)) for t in ts]) * (
                hw.on_time / len(ts)
            )
            assert integral == pytest.approx(hw.on_energy, rel=1e-3)

    def test_boot_curve_zero_outside_window(self):
        hw = PAPER_HARDWARE["chromebook"]
        assert hw.boot_power_curve(-1.0) == 0.0
        assert hw.boot_power_curve(hw.on_time + 1.0) == 0.0

    def test_shutdown_power(self):
        hw = PAPER_HARDWARE["paravance"]
        assert hw.shutdown_power() == pytest.approx(657.0 / 10.0)

    def test_service_time(self):
        hw = PAPER_HARDWARE["raspberry"]
        assert hw.service_time(1500.0) == pytest.approx(
            1500.0 / hw.core_work_rate
        )
