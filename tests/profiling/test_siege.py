"""Unit tests for the Siege-style benchmark emulator."""

import pytest

from repro.profiling.hardware import PAPER_HARDWARE
from repro.profiling.siege import SiegeEmulator
from repro.profiling.webserver import SimulatedWebServer


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SiegeEmulator(duration_s=0.0)
        with pytest.raises(ValueError):
            SiegeEmulator(repeats=0)
        with pytest.raises(ValueError):
            SiegeEmulator(start_concurrency=0)


class TestRamp:
    @pytest.mark.parametrize(
        "name,expected",
        [("paravance", 1331.0), ("chromebook", 33.0), ("raspberry", 9.0)],
    )
    def test_finds_capacity_within_one_percent(self, name, expected):
        server = SimulatedWebServer(PAPER_HARDWARE[name])
        result = SiegeEmulator(seed=0).ramp(server)
        assert result.max_rate == pytest.approx(expected, rel=0.01)

    def test_paper_protocol_five_repeats(self):
        server = SimulatedWebServer(PAPER_HARDWARE["raspberry"])
        result = SiegeEmulator(seed=0).ramp(server)
        assert len(result.repeat_rates) == 5

    def test_ramp_curve_increases_then_plateaus(self):
        server = SimulatedWebServer(PAPER_HARDWARE["chromebook"])
        result = SiegeEmulator(seed=1).ramp(server)
        curve = result.ramp_curve
        concs = [c for c, _ in curve]
        assert concs == sorted(concs)
        assert curve[-1][1] <= result.max_rate * 1.05

    def test_deterministic(self):
        server = SimulatedWebServer(PAPER_HARDWARE["chromebook"])
        a = SiegeEmulator(seed=9).ramp(server).max_rate
        b = SiegeEmulator(seed=9).ramp(server).max_rate
        assert a == b

    def test_best_concurrency_at_least_core_count(self):
        hw = PAPER_HARDWARE["paravance"]
        result = SiegeEmulator(seed=0).ramp(SimulatedWebServer(hw))
        assert result.best_concurrency >= hw.cores
