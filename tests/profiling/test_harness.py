"""Integration tests: the profiling campaign reproduces Table I."""

import pytest

from repro.core.bml import design
from repro.core.profiles import TABLE_I
from repro.profiling.harness import ProfilingCampaign
from repro.profiling.hardware import PAPER_HARDWARE, paper_hardware

ATTRS = (
    "max_perf",
    "idle_power",
    "max_power",
    "on_time",
    "on_energy",
    "off_time",
    "off_energy",
)


@pytest.fixture(scope="module")
def reports():
    return ProfilingCampaign(seed=0).run(paper_hardware())


class TestTableIReproduction:
    def test_all_five_machines_profiled(self, reports):
        assert [r.profile.name for r in reports] == [
            "paravance", "taurus", "graphene", "chromebook", "raspberry",
        ]

    @pytest.mark.parametrize("attr", ATTRS)
    def test_within_two_percent_of_published(self, reports, attr):
        for r in reports:
            measured = getattr(r.profile, attr)
            published = getattr(TABLE_I[r.profile.name], attr)
            # rel covers the large machines; the abs floor covers the 1 Hz
            # sampling quantisation on tiny transients (raspberry boots)
            assert measured == pytest.approx(published, rel=0.02, abs=2.0), (
                r.profile.name,
                attr,
            )

    def test_noise_free_campaign_is_nearly_exact(self):
        campaign = ProfilingCampaign(wattmeter_noise=0.0, seed=0)
        for report in campaign.run(paper_hardware()):
            ref = TABLE_I[report.profile.name]
            assert report.profile.idle_power == pytest.approx(ref.idle_power)
            assert report.profile.max_perf == pytest.approx(ref.max_perf, rel=0.01)
            assert report.profile.on_time == pytest.approx(ref.on_time)
            assert report.profile.off_energy == pytest.approx(
                ref.off_energy, rel=0.01
            )

    def test_table_rows_have_paper_columns(self, reports):
        row = reports[0].as_table_row()
        assert {
            "architecture", "max_perf_reqs", "idle_power_w", "max_power_w",
            "on_time_s", "on_energy_j", "off_time_s", "off_energy_j",
        } == set(row)


class TestDownstreamDesign:
    def test_measured_profiles_select_same_bml_trio(self, reports):
        infra = design([r.profile for r in reports])
        assert infra.names == ("paravance", "chromebook", "raspberry")
        assert "taurus" in infra.removed
        assert "graphene" in infra.removed

    def test_measured_thresholds_close_to_published(self, reports):
        infra = design([r.profile for r in reports])
        # Thresholds are sensitive to small profile perturbations (the Big
        # crossing solves idle/(slope difference)); allow a generous band.
        assert infra.thresholds["raspberry"] == 1.0
        assert 8.0 <= infra.thresholds["chromebook"] <= 12.0
        assert 450.0 <= infra.thresholds["paravance"] <= 620.0


class TestSingleMachine:
    def test_profile_machine_accepts_custom_server(self):
        from repro.profiling.webserver import SimulatedWebServer

        hw = PAPER_HARDWARE["chromebook"]
        campaign = ProfilingCampaign(wattmeter_noise=0.0)
        report = campaign.profile_machine(
            hw, SimulatedWebServer(hw, overhead_work=750.0)
        )
        # heavier requests -> lower measured max performance
        assert report.profile.max_perf < 33.0 * 0.8
