"""Tests for the declarative scenario subsystem.

Covers the acceptance contract of the subsystem: spec round-tripping,
registry completeness across the extension axes, parallel suite results
equal to sequential ones, and the four paper scenarios reproducing
``experiments.run_fig5`` — and the pre-refactor hand-wired construction —
bit-identically.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro import experiments, scenarios
from repro.core.baselines import global_upper_bound_plan, per_day_upper_bound_plan
from repro.core.bml import design
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.profiles import table_i_profiles
from repro.core.scheduler import BMLScheduler
from repro.scenarios.spec import ScenarioError
from repro.sim.datacenter import execute_plan, lower_bound_result
from repro.workload.worldcup import synthesize

pytestmark = pytest.mark.quick


@pytest.fixture(autouse=True)
def _no_fig5_days_env(monkeypatch):
    """Day-count assertions must not depend on the caller's environment;
    tests exercising the override set the variable themselves."""
    monkeypatch.delenv(scenarios.FIG5_DAYS_ENV, raising=False)


class TestSpecRoundTrip:
    def test_every_registry_spec_round_trips_via_json(self):
        for spec in scenarios.specs():
            data = json.loads(json.dumps(spec.to_dict()))
            assert scenarios.ScenarioSpec.from_dict(data) == spec, spec.name

    def test_nested_frozen_fields_round_trip(self):
        spec = scenarios.ScenarioSpec(
            name="x",
            powercap=0.5,
            workload=scenarios.WorkloadSpec(
                source="pattern", pattern="flashcrowd", days=3,
                params=(("sigma", 0.1),),
            ),
            scheduler=scenarios.SchedulerSpec(
                policy="bml", inventory=(("paravance", 2), ("raspberry", 5)),
            ),
            tags=("a", "b"),
        )
        back = scenarios.ScenarioSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.scheduler.inventory_dict() == {"paravance": 2, "raspberry": 5}

    def test_specs_are_hashable(self):
        assert len({spec for spec in scenarios.specs()}) == len(scenarios.specs())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"source": "starlink"},
            {"days": 0},
            {"source": "csv"},  # path required
            {"source": "pattern", "pattern": "nope"},
        ],
    )
    def test_bad_workloads_rejected(self, kwargs):
        with pytest.raises(ScenarioError):
            scenarios.WorkloadSpec(**kwargs)

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ScenarioError):
            scenarios.SchedulerSpec(policy="magic")
        with pytest.raises(ScenarioError):
            scenarios.SchedulerSpec(
                inventory=(("paravance", 1),), max_instances=3
            )

    def test_bad_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            scenarios.ScenarioSpec(name="x", powercap=1.5)
        with pytest.raises(ScenarioError):
            scenarios.ScenarioSpec(
                name="x",
                engine="event",
                scheduler=scenarios.SchedulerSpec(policy="lower-bound"),
            )

    def test_days_env_override(self, monkeypatch):
        wl = scenarios.WorkloadSpec(days=87)
        assert wl.resolved_days() == 87
        monkeypatch.setenv(scenarios.FIG5_DAYS_ENV, "3")
        assert wl.resolved_days() == 3
        assert wl.days == 87  # the field is the source of truth

    def test_explicit_build_days_beats_env(self, monkeypatch):
        monkeypatch.setenv(scenarios.FIG5_DAYS_ENV, "3")
        wl = scenarios.WorkloadSpec(days=87)
        assert wl.build(days=1).n_days == 1
        # run_fig5's n_days is explicit and must win over the env var
        out = experiments.run_fig5(n_days=2, seed=3)
        assert out.trace.n_days == 2

    def test_with_days_pins_against_env(self, monkeypatch):
        monkeypatch.setenv(scenarios.FIG5_DAYS_ENV, "3")
        pinned = scenarios.get("paper-bml").with_days(1)
        assert pinned.workload.resolved_days() == 1
        # round-trips like every other field
        back = scenarios.ScenarioSpec.from_dict(pinned.to_dict())
        assert back == pinned

    def test_freeze_canonicalises_item_order(self):
        a = scenarios.SchedulerSpec(
            inventory=(("raspberry", 10), ("paravance", 2))
        )
        b = scenarios.SchedulerSpec(
            inventory=(("paravance", 2), ("raspberry", 10))
        )
        assert a == b and hash(a) == hash(b)
        assert scenarios.SchedulerSpec.from_dict(a.to_dict()) == a


class TestRegistry:
    def test_paper_scenarios_present_with_published_labels(self):
        labels = [scenarios.get(n).scenario_label for n in scenarios.PAPER_SCENARIOS]
        assert labels == [
            "UpperBound Global",
            "UpperBound PerDay",
            "Big-Medium-Little",
            "LowerBound Theoretical",
        ]
        for name in scenarios.PAPER_SCENARIOS:
            assert scenarios.get(name).workload.days == 87

    def test_catalogue_covers_the_extension_axes(self):
        specs = scenarios.specs()
        assert len(specs) >= 10
        assert any(s.scheduler.max_instances is not None for s in specs)
        assert any(s.scheduler.inventory is not None for s in specs)
        assert any(s.powercap is not None for s in specs)
        assert any(s.scheduler.noise_sigma > 0 for s in specs)
        assert any(s.workload.source == "pattern" for s in specs)
        assert any(
            s.scheduler.policy in ("upper-global", "upper-per-day")
            and "paper" not in s.tags
            for s in specs
        )
        assert any(s.engine != "fast" for s in specs)
        assert any(s.workload.source == "wc98" for s in specs)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ScenarioError, match="paper-bml"):
            scenarios.get("paper-bmI")

    def test_register_rejects_duplicates(self):
        spec = scenarios.get("paper-bml")
        with pytest.raises(ScenarioError):
            scenarios.register(spec)
        # replace=True is the explicit override path
        assert scenarios.register(spec, replace=True) is spec

    def test_by_tag(self):
        assert {s.name for s in scenarios.by_tag("fig5")} == set(
            scenarios.PAPER_SCENARIOS
        )


class TestRunScenario:
    def test_run_sets_label_and_metadata(self):
        run = scenarios.run_scenario(scenarios.get("pattern-steady"))
        assert run.name == "pattern-steady"
        assert run.scenario == "pattern-steady"
        assert run.result.total_energy > 0
        assert run.days == 1
        assert 0 <= run.qos().served_fraction <= 1
        row = run.summary_row()
        assert {"scenario", "energy_kwh", "reconfigs", "served_frac"} <= set(row)

    def test_override_objects_take_precedence(self, infra, short_trace):
        spec = scenarios.get("paper-bml")
        run = scenarios.run_scenario(spec, trace=short_trace, infra=infra)
        assert len(run.result.power) == len(short_trace)
        assert run.trace_peak == short_trace.peak

    def test_powercap_raises_energy_floor_not_peak(self):
        capped = scenarios.run_scenario(scenarios.get("power-capped").with_days(1))
        uncapped_spec = replace(
            scenarios.get("power-capped").with_days(1), name="uncapped",
            powercap=None,
        )
        uncapped = scenarios.run_scenario(uncapped_spec)
        # capping shrinks per-machine capacity -> more machines -> more idle
        assert capped.result.total_energy >= uncapped.result.total_energy


class TestRunSuite:
    SPECS = [
        "pattern-steady",
        "constrained-redundant",
        "inventory-small-dc",
    ]

    def _small_specs(self):
        return [scenarios.get(n).with_days(1) for n in self.SPECS]

    def test_parallel_equals_sequential(self):
        specs = self._small_specs()
        seq = scenarios.run_suite(specs, jobs=1)
        par = scenarios.run_suite(specs, jobs=2)
        assert [r.name for r in par] == [r.name for r in seq]
        for a, b in zip(seq, par):
            assert np.array_equal(a.result.power, b.result.power)
            assert np.array_equal(a.result.unserved, b.result.unserved)
            assert a.result.n_reconfigurations == b.result.n_reconfigurations
            assert a.result.switch_energy == b.result.switch_energy

    def test_bad_jobs_rejected(self):
        with pytest.raises(ScenarioError):
            scenarios.run_suite([], jobs=0)

    def test_shared_trace_override_applies_to_every_scenario(self, short_trace):
        specs = [scenarios.get(n) for n in self.SPECS[:2]]
        runs = scenarios.run_suite(specs, trace=short_trace)
        for run in runs:
            assert len(run.result.power) == len(short_trace)
            assert run.trace_peak == short_trace.peak


class TestChunkedFanOut:
    """PR 5: workload-chunked scheduling with warm-cache shipping."""

    def _catalogue(self, days=1):
        return [
            s.with_days(days)
            for s in scenarios.specs()
            if "paper" not in s.tags and s.workload.is_available()
        ]

    def test_chunks_partition_all_indices(self):
        specs = self._catalogue()
        chunks = scenarios.chunk_specs(specs, 4)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(specs)))
        # one task per workload piece, biggest first (LPT dispatch order)
        sizes = [len(c) for c in chunks]
        assert sizes == sorted(sizes, reverse=True)

    def test_same_workload_coalesces_within_fair_share(self):
        specs = [
            scenarios.get(n).with_days(1)
            for n in ("pattern-steady", "noisy-prediction", "pattern-flashcrowd")
        ]
        # three distinct workloads -> three singleton tasks
        chunks = scenarios.chunk_specs(specs, 2)
        assert sorted(len(c) for c in chunks) == [1, 1, 1]
        # duplicate workloads coalesce: the same spec listed twice always
        # lands in one chunk
        dup = [specs[0], specs[1], specs[0]]
        chunks = scenarios.chunk_specs(dup, 2)
        together = [c for c in chunks if 0 in c]
        assert together and 2 in together[0]

    def test_oversized_groups_split_to_fair_share(self):
        specs = [scenarios.get("pattern-steady").with_days(1)] * 8
        chunks = scenarios.chunk_specs(specs, 4)
        assert sorted(len(c) for c in chunks) == [2, 2, 2, 2]

    def test_chunking_is_deterministic(self):
        specs = self._catalogue()
        assert scenarios.chunk_specs(specs, 3) == scenarios.chunk_specs(
            specs, 3
        )

    def test_chunked_and_legacy_match_sequential(self):
        specs = [
            scenarios.get(n).with_days(1)
            for n in (
                "pattern-steady",
                "constrained-redundant",
                "inventory-small-dc",
                "noisy-prediction",
            )
        ]
        seq = scenarios.run_suite(specs, jobs=1)
        chunked = scenarios.run_suite(specs, jobs=2)
        legacy = scenarios.run_suite(specs, jobs=2, chunked=False)
        for a, b, c in zip(seq, chunked, legacy):
            assert a.name == b.name == c.name
            assert np.array_equal(a.result.power, b.result.power)
            assert np.array_equal(a.result.power, c.result.power)
            assert np.array_equal(a.result.unserved, b.result.unserved)
            assert a.result.switch_energy == b.result.switch_energy
            assert b.result.meta == c.result.meta

    def test_prewarmed_parent_cache_ships_bit_identical_results(self):
        specs = [
            scenarios.get(n).with_days(1)
            for n in ("pattern-steady", "pattern-flashcrowd")
        ]
        scenarios.clear_caches()
        cold = scenarios.run_suite(specs, jobs=2)
        # parent cache is now warm: the chunked pool receives the built
        # traces instead of rebuilding them, with identical results
        warm = scenarios.run_suite(specs, jobs=2)
        for a, b in zip(cold, warm):
            assert np.array_equal(a.result.power, b.result.power)
            assert a.result.total_energy == b.result.total_energy


class TestPaperBitIdentity:
    """The four paper scenarios must reproduce the Fig. 5 numbers exactly."""

    DAYS, SEED = 2, 3

    @pytest.fixture(scope="class")
    def fig5(self):
        return experiments.run_fig5(n_days=self.DAYS, seed=self.SEED)

    @pytest.fixture(scope="class")
    def suite(self):
        specs = [
            replace(
                scenarios.get(name),
                workload=replace(
                    scenarios.get(name).workload, days=self.DAYS, seed=self.SEED
                ),
            )
            for name in scenarios.PAPER_SCENARIOS
        ]
        # class-scoped fixtures set up before the autouse env guard
        with pytest.MonkeyPatch.context() as mp:
            mp.delenv(scenarios.FIG5_DAYS_ENV, raising=False)
            return scenarios.run_suite(specs)

    def test_registry_scenarios_match_run_fig5(self, fig5, suite):
        by_label = {r.result.scenario: r.result for r in suite}
        for res in fig5.results:
            other = by_label[res.scenario]
            assert np.array_equal(res.power, other.power), res.scenario
            assert np.array_equal(res.unserved, other.unserved)
            assert res.n_reconfigurations == other.n_reconfigurations
            assert res.switch_energy == other.switch_energy

    def test_run_fig5_matches_pre_refactor_construction(self, fig5):
        """Pin the PR 2 Fig. 5 numbers: the hand-wired construction the
        subsystem replaced, reproduced verbatim."""
        trace = synthesize(n_days=self.DAYS, seed=self.SEED)
        infra = design(table_i_profiles())
        scheduler = BMLScheduler(
            infra, predictor=LookAheadMaxPredictor(378), method="greedy"
        )
        bml = execute_plan(scheduler.plan(trace), trace, "Big-Medium-Little")
        upper_global = execute_plan(
            global_upper_bound_plan(trace, infra.big), trace, "UpperBound Global"
        )
        upper_per_day = execute_plan(
            per_day_upper_bound_plan(trace, infra.big), trace, "UpperBound PerDay"
        )
        lower = lower_bound_result(
            trace,
            infra.table(max(trace.peak, 1.0), "greedy"),
            "LowerBound Theoretical",
        )
        for mine, ref in zip(
            fig5.results, (upper_global, upper_per_day, bml, lower)
        ):
            assert mine.scenario == ref.scenario
            assert np.array_equal(mine.power, ref.power), ref.scenario
            assert np.array_equal(mine.unserved, ref.unserved)
        ref_overhead = bml.per_day_energy() / lower.per_day_energy() - 1.0
        assert np.array_equal(fig5.overhead.per_day, ref_overhead)
        assert fig5.overhead.mean == float(np.mean(ref_overhead))
        assert fig5.overhead.minimum == float(np.min(ref_overhead))
        assert fig5.overhead.maximum == float(np.max(ref_overhead))

    def test_run_fig5_signature_unchanged(self):
        import inspect

        params = list(inspect.signature(experiments.run_fig5).parameters)
        assert params == [
            "trace", "infra", "predictor", "n_days", "seed", "method",
            "policy", "engine",
        ]


class TestWC98Scenarios:
    """Archive-file catalogue entries, replayed end to end on synthetic
    logs written through :mod:`repro.workload.wc98format`'s writer."""

    def _write_logs(self, tmp_path):
        """Two hours of archive-format records; returns (glob, n_requests)."""
        from repro.workload.wc98format import write_records

        rng = np.random.default_rng(7)
        base = 894_000_000
        seconds = np.arange(2 * 3600)
        counts = (50 + 30 * np.sin(seconds / 600.0)).astype(np.int64)
        stamps = np.repeat(base + seconds, counts)
        write_records(tmp_path / "wc98_day00.log.gz", stamps, rng)
        return str(tmp_path / "*.log.gz"), int(counts.sum())

    def test_archive_entries_registered(self):
        for name in ("wc98-archive-bml", "wc98-archive-upper"):
            spec = scenarios.get(name)
            assert spec.workload.source == "wc98"
            assert "wc98" in spec.tags

    def test_availability_reflects_missing_archive(self, tmp_path):
        # the checked-in entries point at data/wc98/ which this repo
        # does not ship; sweeps must skip them, not crash
        assert not scenarios.get("wc98-archive-bml").workload.is_available()
        glob_path, _ = self._write_logs(tmp_path)
        wl = replace(
            scenarios.get("wc98-archive-bml").workload, path=glob_path
        )
        assert wl.is_available()
        # synthetic sources are always available
        assert scenarios.get("pattern-steady").workload.is_available()

    def test_end_to_end_replay_of_synthetic_archive_logs(self, tmp_path):
        glob_path, n_requests = self._write_logs(tmp_path)
        specs = [
            replace(
                scenarios.get(name),
                workload=replace(
                    scenarios.get(name).workload, path=glob_path
                ),
            )
            for name in ("wc98-archive-bml", "wc98-archive-upper")
        ]
        runs = scenarios.run_suite(specs)
        for run in runs:
            assert run.result.total_energy > 0
            # the replayed demand is exactly the written request count
            assert run.trace_total_demand == pytest.approx(n_requests)
        # and the runs distil into comparable records like any other
        bml, upper = (run.to_record() for run in runs)
        assert bml.total_energy_j < upper.total_energy_j
        assert bml.spec["workload"]["source"] == "wc98"


class TestEngines:
    def test_event_engine_matches_fast_path(self):
        spec = scenarios.get("event-engine-day")
        event = scenarios.run_scenario(spec)
        fast = scenarios.run_scenario(replace(spec, name="fastpath", engine="fast"))
        assert np.allclose(event.result.power, fast.result.power, atol=1e-9)
        assert event.result.n_reconfigurations == fast.result.n_reconfigurations

    def test_event_alias_is_twophase_and_variants_are_bit_identical(self):
        spec = scenarios.get("event-engine-day").with_days(1)
        runs = {
            engine: scenarios.run_scenario(replace(spec, engine=engine))
            for engine in (
                "event", "event-twophase", "event-segments", "event-reference",
            )
        }
        assert runs["event"].result.meta["engine"] == "twophase"
        assert runs["event-twophase"].result.meta["engine"] == "twophase"
        assert runs["event-segments"].result.meta["engine"] == "segments"
        assert runs["event-reference"].result.meta["engine"] == "reference"
        ref = runs["event-reference"].result
        for name, run in runs.items():
            assert np.array_equal(run.result.power, ref.power), name
            assert np.array_equal(run.result.unserved, ref.unserved), name
            assert (
                run.result.meta["meter_energy_j"] == ref.meta["meter_energy_j"]
            ), name

    def test_engine_names_validated(self):
        with pytest.raises(ScenarioError):
            replace(scenarios.get("event-engine-day"), engine="event-warp")


class TestStartMethods:
    """PR 6: warm-cache shipping is start-method aware.

    Under ``fork`` workers inherit the parent's caches copy-on-write, so
    no trace bytes travel through the pool pipes; under ``spawn`` the
    prebuilt traces ship explicitly.  Both regimes must produce results
    bit-identical to the sequential run.
    """

    SPECS = ("pattern-steady", "pattern-flashcrowd")

    def _specs(self):
        return [scenarios.get(n).with_days(1) for n in self.SPECS]

    def _assert_matches_sequential(self, start_method):
        specs = self._specs()
        seq = scenarios.run_suite(specs, jobs=1)
        # warm parent cache: the interesting shipping path on both methods
        par = scenarios.run_suite(specs, jobs=2, start_method=start_method)
        for a, b in zip(seq, par):
            assert a.name == b.name
            assert np.array_equal(a.result.power, b.result.power)
            assert np.array_equal(a.result.unserved, b.result.unserved)
            assert a.result.meta == b.result.meta

    def test_fork_start_method(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        self._assert_matches_sequential("fork")

    def test_spawn_start_method(self):
        self._assert_matches_sequential("spawn")

    def test_fork_restores_worker_shared_global(self):
        """The parent-side global the fork pool installs is transient."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        from repro.scenarios import runner

        before = dict(runner._WORKER_SHARED)
        scenarios.run_suite(
            self._specs(), jobs=2, start_method="fork"
        )
        assert runner._WORKER_SHARED == before
