"""Shared runs for the results-layer tests.

Two module-cheap runs on the session-cached two-hour trace: the paper's
BML scenario and a variant with a different prediction window, enough to
exercise records, stores, reports and diffs without long replays.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import scenarios


@pytest.fixture(scope="session")
def bml_run(infra, short_trace):
    return scenarios.run_scenario(
        scenarios.get("paper-bml"), trace=short_trace, infra=infra
    )


@pytest.fixture(scope="session")
def variant_run(infra, short_trace):
    spec = scenarios.get("paper-bml")
    spec = replace(
        spec,
        name="bml-window-600",
        label=None,
        scheduler=replace(spec.scheduler, window=600),
    )
    return scenarios.run_scenario(spec, trace=short_trace, infra=infra)
