"""SuiteReport aggregation, the diff engine, and the CLI on stored runs."""

import numpy as np
import pytest

from repro.analysis.figures import suite_series
from repro.analysis.metrics import overhead_stats
from repro.analysis.tables import render_suite
from repro.cli import main
from repro.results import RunStore, SuiteReport, diff

pytestmark = pytest.mark.quick


class TestSuiteReport:
    def test_rows_and_baseline_savings(self, bml_run, variant_run):
        report = SuiteReport.from_runs(
            [bml_run, variant_run], baseline="paper-bml"
        )
        assert report.names == ["paper-bml", "bml-window-600"]
        savings = report.savings()
        assert savings["paper-bml"] == 0.0
        expected = 1.0 - (
            variant_run.result.total_energy / bml_run.result.total_energy
        )
        assert savings["bml-window-600"] == pytest.approx(expected)
        rows = report.rows()
        assert [r["scenario"] for r in rows] == report.names
        assert all("saved_vs_baseline" in r for r in rows)

    def test_overhead_uses_stored_series(self, bml_run, variant_run):
        report = SuiteReport.from_runs([bml_run, variant_run])
        stats = report.overhead("bml-window-600", "paper-bml")
        ref = overhead_stats(
            variant_run.result.per_day_energy(),
            bml_run.result.per_day_energy(),
        )
        assert stats.mean == ref.mean
        assert np.array_equal(stats.per_day, ref.per_day)

    def test_bad_inputs_rejected(self, bml_run):
        with pytest.raises(ValueError):
            SuiteReport(results=())
        with pytest.raises(ValueError, match="baseline"):
            SuiteReport.from_runs([bml_run], baseline="nope")
        report = SuiteReport.from_runs([bml_run])
        with pytest.raises(ValueError, match="baseline"):
            report.savings()
        with pytest.raises(ValueError, match="no result"):
            report.get("nope")

    def test_render_suite_smoke(self, bml_run, variant_run):
        report = SuiteReport.from_runs(
            [bml_run, variant_run], baseline="paper-bml"
        )
        text = render_suite(report, title="suite smoke")
        assert "suite smoke" in text
        assert "paper-bml" in text and "bml-window-600" in text
        assert "saved_vs_baseline" in text
        assert report.render() == render_suite(report)

    def test_suite_series_from_records(self, bml_run, variant_run):
        report = SuiteReport.from_runs([bml_run, variant_run])
        fig = suite_series(report)
        assert set(fig.series) == {"paper-bml", "bml-window-600"}
        x, y = fig.series["paper-bml"]
        assert np.array_equal(y, bml_run.result.per_day_energy_kwh())
        assert fig.annotations["paper-bml"]["label"] == "Big-Medium-Little"


class TestDiff:
    def test_identical_runs(self, bml_run):
        d = diff(bml_run.to_record(), bml_run.to_record())
        assert d.identical
        assert not d.spec_changes
        assert not np.any(d.per_day_delta_j)
        assert "identical" in d.describe()

    def test_detects_metric_and_spec_changes(self, bml_run, variant_run):
        a, b = bml_run.to_record(), variant_run.to_record()
        d = diff(a, b)
        assert not d.identical
        # specs serialise non-default fields only: the paper's 378 s
        # window is the default, so side a reads "(default)"
        assert d.spec_changes["scheduler.window"] == ("(default)", 600)
        assert d.spec_changes["name"] == ("paper-bml", "bml-window-600")
        by_metric = {m.metric: m for m in d.metrics}
        energy = by_metric["total_energy_j"]
        assert energy.delta == b.total_energy_j - a.total_energy_j
        assert energy.relative == pytest.approx(
            energy.delta / a.total_energy_j
        )
        assert d.per_day_delta_j is not None
        assert np.array_equal(
            d.per_day_delta_j, b.per_day_energy() - a.per_day_energy()
        )

    def test_default_marker_for_one_sided_spec_fields(self, bml_run, variant_run):
        d = diff(bml_run.to_record(), variant_run.to_record())
        # paper-bml carries an explicit label; the variant uses the default
        assert d.spec_changes["label"] == ("Big-Medium-Little", "(default)")

    def test_day_count_mismatch(self, bml_run):
        from dataclasses import replace

        a = bml_run.to_record()
        b = replace(
            a, per_day_energy_j=a.per_day_energy_j * 2, days=a.days * 2
        )
        d = diff(a, b)
        assert d.per_day_delta_j is None
        assert "day counts differ" in d.describe()

    def test_zero_reference_metric_has_no_relative(self, bml_run):
        d = diff(bml_run.to_record(), bml_run.to_record())
        by_metric = {m.metric: m for m in d.metrics}
        # a perfectly served run has zero unserved demand on both sides
        assert by_metric["unserved_demand"].a == 0.0
        assert by_metric["unserved_demand"].relative is None


class TestCliOnStoredRuns:
    @pytest.fixture()
    def store(self, tmp_path, bml_run, variant_run):
        store = RunStore(tmp_path / "runs")
        self.id_a = store.save(bml_run)
        self.id_b = store.save(variant_run)
        return store

    def test_diff_cli(self, store, capsys):
        assert (
            main(
                [
                    "scenario", "diff", self.id_a, self.id_b,
                    "--store", str(store.root),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "headline metrics" in out
        assert "scheduler.window" in out
        assert "total_energy_j" in out

    def test_diff_cli_accepts_run_directories(self, store, capsys):
        assert (
            main(
                [
                    "scenario", "diff",
                    str(store.root / self.id_a),
                    str(store.root / self.id_b),
                ]
            )
            == 0
        )
        assert "headline metrics" in capsys.readouterr().out

    def test_diff_cli_unknown_run_id(self, store):
        with pytest.raises(SystemExit, match="0099-nope"):
            main(
                [
                    "scenario", "diff", self.id_a, "0099-nope",
                    "--store", str(store.root),
                ]
            )

    def test_report_cli(self, store, capsys):
        assert (
            main(
                [
                    "scenario", "report",
                    "--store", str(store.root),
                    "--baseline", "paper-bml",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "suite report" in out
        assert "saved_vs_baseline" in out
        assert "bml-window-600" in out

    def test_report_cli_empty_store(self, tmp_path):
        with pytest.raises(SystemExit, match="no stored runs"):
            main(["scenario", "report", "--store", str(tmp_path / "none")])
