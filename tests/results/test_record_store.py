"""ScenarioResult distillation and RunStore round trips.

The acceptance contract of the results layer: a save→load cycle must
reproduce every headline metric, the per-day energy series and the spec
dict bit-identically.
"""

import json

import numpy as np
import pytest

from repro.results import (
    HEADLINE_METRICS,
    RunStore,
    ScenarioResult,
    StoreError,
    load_run_dir,
)

pytestmark = pytest.mark.quick


class TestRecord:
    def test_distils_headline_metrics_from_run(self, bml_run):
        rec = bml_run.to_record()
        res = bml_run.result
        assert rec.name == "paper-bml"
        assert rec.label == "Big-Medium-Little"
        assert rec.total_energy_j == res.total_energy
        assert rec.mean_power_w == res.mean_power
        assert rec.n_reconfigurations == res.n_reconfigurations
        assert rec.switch_energy_j == res.switch_energy
        assert rec.switch_time_s == sum(
            r.duration for r in res.reconfigurations
        )
        assert rec.per_day_energy_j == tuple(res.per_day_energy())
        assert rec.total_demand == bml_run.trace_total_demand
        assert rec.served_fraction == bml_run.qos().served_fraction
        assert rec.engine == "fast"
        assert rec.seed == bml_run.spec.workload.seed
        assert rec.days == bml_run.days
        from repro import __version__

        assert rec.version == __version__

    def test_metrics_cover_the_contract(self, bml_run):
        metrics = bml_run.to_record().metrics()
        assert tuple(metrics) == HEADLINE_METRICS
        assert metrics["total_energy_kwh"] == metrics["total_energy_j"] / 3.6e6

    def test_spec_round_trips_to_live_spec(self, bml_run):
        from repro import scenarios

        rec = bml_run.to_record()
        assert rec.load_spec() == scenarios.get("paper-bml")

    def test_summary_row_shape_matches_run(self, bml_run):
        assert bml_run.to_record().summary_row() == bml_run.summary_row()

    def test_rejects_unknown_format(self, bml_run):
        rec = bml_run.to_record()
        data = rec.to_json_dict()
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            ScenarioResult.from_parts(data, rec.series_arrays())


class TestRunStore:
    def test_save_load_bit_identical(self, tmp_path, bml_run):
        store = RunStore(tmp_path / "runs")
        rec = bml_run.to_record()
        run_id = store.save(bml_run)
        back = store.load(run_id)
        assert back == rec
        assert back.metrics() == rec.metrics()  # every metric, bit-exact
        assert back.per_day_energy_j == rec.per_day_energy_j
        assert np.array_equal(back.per_day_energy(), rec.per_day_energy())
        assert back.spec == rec.spec
        assert back.created_at == rec.created_at

    def test_save_accepts_records_and_runs(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        a = store.save(bml_run)
        b = store.save(bml_run.to_record())
        assert [a, b] == ["0001-paper-bml", "0002-paper-bml"]
        assert store.load(a).metrics() == store.load(b).metrics()

    def test_list_and_latest(self, tmp_path, bml_run, variant_run):
        store = RunStore(tmp_path)
        ids = [store.save(bml_run), store.save(variant_run),
               store.save(bml_run)]
        stored = store.list()
        assert [s.run_id for s in stored] == ids
        assert [s.name for s in stored] == [
            "paper-bml", "bml-window-600", "paper-bml",
        ]
        assert stored[0].total_energy_kwh == pytest.approx(
            bml_run.result.total_energy_kwh
        )
        # latest overall is the last save; latest by name filters
        assert store.latest().name == "paper-bml"
        assert store.latest("bml-window-600").name == "bml-window-600"
        assert len(store.load_all()) == 3

    def test_unknown_run_raises_with_known_ids(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        run_id = store.save(bml_run)
        with pytest.raises(StoreError, match=run_id):
            store.load("0099-nope")
        with pytest.raises(StoreError):
            store.latest("nope")

    def test_empty_store(self, tmp_path):
        store = RunStore(tmp_path / "missing")
        assert store.list() == []
        with pytest.raises(StoreError):
            store.latest()

    def test_load_run_dir_directly(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        run_id = store.save(bml_run)
        rec = load_run_dir(tmp_path / run_id)
        assert rec == store.load(run_id)
        with pytest.raises(StoreError, match="result.json"):
            load_run_dir(tmp_path)

    def test_on_disk_format_is_json_plus_npz(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        run_dir = tmp_path / store.save(bml_run)
        data = json.loads((run_dir / "result.json").read_text())
        assert data["name"] == "paper-bml"
        assert data["spec"]["name"] == "paper-bml"
        assert "total_energy_j" in data["metrics"]
        assert data["provenance"]["engine"] == "fast"
        with np.load(run_dir / "series.npz") as npz:
            assert npz["per_day_energy_j"].dtype == np.float64


class TestPrune:
    """PR 5 retention policy: keep each scenario's newest N runs."""

    def _store(self, tmp_path, bml_run, variant_run):
        store = RunStore(tmp_path)
        ids = [store.save(bml_run) for _ in range(3)]
        ids += [store.save(variant_run)]
        return store, ids

    def test_keeps_newest_per_scenario(self, tmp_path, bml_run, variant_run):
        store, ids = self._store(tmp_path, bml_run, variant_run)
        removed = store.prune(keep_last=1)
        # the two oldest paper-bml runs go, in save order; the single
        # variant run is untouched
        assert removed == ids[:2]
        assert [s.run_id for s in store.list()] == [ids[2], ids[3]]

    def test_survivors_stay_bit_identical(self, tmp_path, bml_run, variant_run):
        store, ids = self._store(tmp_path, bml_run, variant_run)
        before = {rid: store.load(rid) for rid in ids[2:]}
        store.prune(keep_last=1)
        for rid, record in before.items():
            reloaded = store.load(rid)
            assert reloaded.to_json_dict() == record.to_json_dict()
            assert np.array_equal(
                reloaded.per_day_energy_j, record.per_day_energy_j
            )

    def test_keep_more_than_stored_is_a_no_op(
        self, tmp_path, bml_run, variant_run
    ):
        store, ids = self._store(tmp_path, bml_run, variant_run)
        assert store.prune(keep_last=10) == []
        assert [s.run_id for s in store.list()] == ids

    def test_keep_zero_empties_the_store(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        store.save(bml_run)
        store.save(bml_run)
        removed = store.prune(keep_last=0)
        assert len(removed) == 2
        assert store.list() == []

    def test_negative_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            RunStore(tmp_path).prune(keep_last=-1)

    def test_new_saves_after_prune_keep_sequencing(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        for _ in range(3):
            store.save(bml_run)
        store.prune(keep_last=1)
        new_id = store.save(bml_run)
        # the survivor had seq 3; the next save continues past it
        assert new_id.startswith("0004-")
        assert [s.seq for s in store.list()] == [3, 4]


class TestQuarantine:
    """PR 7: corrupt run directories are skipped with a report, not fatal."""

    def _corrupt_store(self, tmp_path, bml_run, variant_run):
        store = RunStore(tmp_path)
        ids = [store.save(bml_run), store.save(variant_run), store.save(bml_run)]
        return store, ids

    def test_truncated_result_json_is_quarantined(
        self, tmp_path, bml_run, variant_run
    ):
        store, ids = self._corrupt_store(tmp_path, bml_run, variant_run)
        victim = tmp_path / ids[1] / "result.json"
        victim.write_text(victim.read_text()[:40])  # torn write
        stored = store.list()
        assert [s.run_id for s in stored] == [ids[0], ids[2]]
        skipped = store.skipped()
        assert [q.run_id for q in skipped] == [ids[1]]
        assert "unreadable result.json" in skipped[0].reason

    def test_missing_result_json_is_quarantined(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        run_id = store.save(bml_run)
        (tmp_path / run_id / "result.json").unlink()
        assert store.list() == []
        assert [q.run_id for q in store.skipped()] == [run_id]
        assert "missing result.json" in store.skipped()[0].reason

    def test_corrupt_series_quarantined_by_load_all(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        good = store.save(bml_run)
        bad = store.save(bml_run)
        (tmp_path / bad / "series.npz").write_bytes(b"not an npz")
        # list() only reads headers, so both look fine ...
        assert [s.run_id for s in store.list()] == [good, bad]
        # ... but the full load quarantines the one with the bad series
        records = store.load_all()
        assert len(records) == 1
        assert [q.run_id for q in store.skipped()] == [bad]
        assert "unloadable run" in store.skipped()[0].reason

    def test_load_all_strict_raises(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        bad = store.save(bml_run)
        (tmp_path / bad / "series.npz").write_bytes(b"not an npz")
        with pytest.raises(Exception):
            store.load_all(strict=True)

    def test_prune_never_touches_quarantined_dirs(
        self, tmp_path, bml_run
    ):
        store = RunStore(tmp_path)
        ids = [store.save(bml_run) for _ in range(3)]
        victim = tmp_path / ids[0] / "result.json"
        victim.write_text("{ not json")
        removed = store.prune(keep_last=1)
        # only the readable surplus run goes; the quarantined dir stays
        assert removed == [ids[1]]
        assert (tmp_path / ids[0]).is_dir()
        assert victim.read_text() == "{ not json"

    def test_skipped_resets_per_scan(self, tmp_path, bml_run):
        store = RunStore(tmp_path)
        run_id = store.save(bml_run)
        victim = tmp_path / run_id / "result.json"
        original = victim.read_text()
        victim.write_text(original[:30])
        store.list()
        assert len(store.skipped()) == 1
        victim.write_text(original)  # repaired by hand
        store.list()
        assert store.skipped() == []
