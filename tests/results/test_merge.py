"""Federated stores: ``RunStore.merge`` and ``merged_results`` (PR 8).

A sweep split across hosts yields one store per host; merging (or just
reading them side by side) must reconstruct exactly the store a single
host would have written: disjoint halves concatenate, duplicate spec
keys resolve newest-first (or error on request), quarantined source
directories are skipped *and reported*, and merging twice is a no-op.
"""

from dataclasses import replace

import pytest

from repro.results import (
    RunStore,
    StoreError,
    SuiteReport,
    merged_results,
)


@pytest.fixture()
def records(bml_run, variant_run):
    """Two distinct-spec records with controlled timestamps."""
    a = replace(bml_run.to_record(), created_at="2026-08-01T10:00:00+00:00")
    b = replace(
        variant_run.to_record(), created_at="2026-08-01T11:00:00+00:00"
    )
    return a, b


class TestDisjointMerge:
    def test_half_stores_merge_to_the_full_store(self, tmp_path, records):
        rec_a, rec_b = records
        full = RunStore(tmp_path / "full")
        full.save(rec_a)
        full.save(rec_b)
        half_a = RunStore(tmp_path / "a")
        half_a.save(rec_a)
        half_b = RunStore(tmp_path / "b")
        half_b.save(rec_b)

        dest = RunStore(tmp_path / "merged")
        saved = dest.merge(half_a, half_b)
        assert len(saved) == 2

        want = full.load_all()
        got = dest.load_all()
        assert [r.name for r in got] == [r.name for r in want]
        for g, w in zip(got, want):
            # byte-faithful re-save: every metric, series and timestamp
            assert g == w
        assert (
            SuiteReport(tuple(got)).rows() == SuiteReport(tuple(want)).rows()
        )

    def test_federated_view_equals_merged_store(self, tmp_path, records):
        rec_a, rec_b = records
        half_a = RunStore(tmp_path / "a")
        half_a.save(rec_a)
        half_b = RunStore(tmp_path / "b")
        half_b.save(rec_b)
        dest = RunStore(tmp_path / "merged")
        dest.merge(half_a, half_b)
        assert merged_results([half_a, half_b]) == dest.load_all()

    def test_remerge_is_idempotent(self, tmp_path, records):
        rec_a, rec_b = records
        half_a = RunStore(tmp_path / "a")
        half_a.save(rec_a)
        half_b = RunStore(tmp_path / "b")
        half_b.save(rec_b)
        dest = RunStore(tmp_path / "merged")
        assert len(dest.merge(half_a, half_b)) == 2
        assert dest.merge(half_a, half_b) == []
        assert len(dest.load_all()) == 2


class TestConflicts:
    def test_newest_wins_across_stores(self, tmp_path, records):
        rec_a, _ = records
        older = replace(rec_a, created_at="2026-08-01T09:00:00+00:00")
        store_old = RunStore(tmp_path / "old")
        store_old.save(older)
        store_new = RunStore(tmp_path / "new")
        store_new.save(rec_a)

        dest = RunStore(tmp_path / "merged")
        saved = dest.merge(store_old, store_new)
        assert len(saved) == 1
        assert dest.latest(rec_a.name).created_at == rec_a.created_at

    def test_source_older_than_dest_is_skipped(self, tmp_path, records):
        rec_a, _ = records
        older = replace(rec_a, created_at="2026-08-01T09:00:00+00:00")
        dest = RunStore(tmp_path / "dest")
        dest.save(rec_a)
        src = RunStore(tmp_path / "src")
        src.save(older)
        assert dest.merge(src) == []
        assert dest.latest(rec_a.name).created_at == rec_a.created_at

    def test_reruns_within_one_store_are_not_conflicts(
        self, tmp_path, records
    ):
        rec_a, _ = records
        src = RunStore(tmp_path / "src")
        src.save(replace(rec_a, created_at="2026-08-01T09:00:00+00:00"))
        src.save(rec_a)  # a newer re-run: history, not a conflict
        dest = RunStore(tmp_path / "dest")
        saved = dest.merge(src, on_conflict="error")
        assert len(saved) == 1
        assert dest.latest(rec_a.name).created_at == rec_a.created_at

    def test_error_policy_raises_and_writes_nothing(self, tmp_path, records):
        rec_a, _ = records
        src1 = RunStore(tmp_path / "s1")
        src1.save(rec_a)
        src2 = RunStore(tmp_path / "s2")
        src2.save(rec_a)
        dest = RunStore(tmp_path / "dest")
        with pytest.raises(StoreError, match="merge conflict"):
            dest.merge(src1, src2, on_conflict="error")
        assert dest.list() == []

    def test_unknown_policy_is_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="on_conflict"):
            RunStore(tmp_path / "dest").merge(on_conflict="sacrifice")


class TestQuarantine:
    def test_corrupt_source_runs_are_skipped_and_reported(
        self, tmp_path, records
    ):
        rec_a, rec_b = records
        src = RunStore(tmp_path / "src")
        src.save(rec_a)
        broken_id = src.save(rec_b)
        (src.root / broken_id / "series.npz").unlink()  # torn copy

        dest = RunStore(tmp_path / "dest")
        saved = dest.merge(src)
        assert len(saved) == 1
        # the source's quarantine surfaces in the destination's report
        # (read before any fresh scan resets it)
        assert any(q.run_id == broken_id for q in dest.skipped())
        assert [r.name for r in dest.load_all()] == [rec_a.name]
