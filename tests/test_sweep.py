"""Parametric sweeps: grid declaration, expansion, registry, suite run.

A :class:`~repro.scenarios.sweep.SweepSpec` must mint the same spec
list everywhere (names are a pure function of the declaration — the
federated-store merge depends on it), apply every axis to the right
layer (scheduler / workload / scenario), reject malformed grids with
named errors, and JSON round-trip like every other spec in the repo.
"""

import json
from dataclasses import replace

import pytest

from repro import scenarios
from repro.scenarios import ScenarioError, SweepSpec
from repro.scenarios.spec import FIG5_DAYS_ENV


def smoke_sweep(**overrides):
    kwargs = dict(
        name="t-grid",
        base="paper-bml",
        axes=(
            ("policy", ("bml", "upper-global")),
            ("peak_rate", (2000.0, 3000.0)),
            ("days", (1,)),
        ),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestExpansion:
    def test_size_and_order_are_the_cross_product(self):
        sweep = smoke_sweep()
        specs = sweep.expand()
        assert len(specs) == sweep.size == 4
        # itertools.product order: last axis fastest
        assert [s.name for s in specs] == [
            "t-grid+policy=bml+peak_rate=2000+days=1",
            "t-grid+policy=bml+peak_rate=3000+days=1",
            "t-grid+policy=upper-global+peak_rate=2000+days=1",
            "t-grid+policy=upper-global+peak_rate=3000+days=1",
        ]
        assert sweep.point_names() == [s.name for s in specs]

    def test_expansion_is_deterministic(self):
        a = smoke_sweep().expand()
        b = smoke_sweep().expand()
        assert [s.spec_key() for s in a] == [s.spec_key() for s in b]

    def test_axes_land_on_the_right_layer(self):
        spec = smoke_sweep().expand()[0]
        assert spec.scheduler.policy == "bml"
        assert spec.workload.peak_rate == 2000.0
        assert spec.workload.days == 1
        assert "sweep" in spec.tags
        assert "sweep:t-grid" in spec.tags

    def test_minted_specs_carry_their_grid_coordinates(self):
        spec = smoke_sweep().expand()[0]
        coords = dict(spec.axes)
        assert coords == {
            "policy": "bml",
            "peak_rate": 2000.0,
            "days": 1,
        }

    def test_days_axis_pins_against_the_env_override(self, monkeypatch):
        monkeypatch.setenv(FIG5_DAYS_ENV, "5")
        spec = smoke_sweep().expand()[0]
        assert spec.workload.days == 1  # pinned, not overridden

    def test_labelled_inventory_axis(self):
        sweep = SweepSpec(
            name="inv",
            base="paper-bml",
            axes=(
                (
                    "inventory",
                    (
                        ("full", None),
                        ("tiny", {"chromebook": 2, "paravance": 1}),
                    ),
                ),
            ),
        )
        full, tiny = sweep.expand()
        assert full.name == "inv+inventory=full"
        assert full.scheduler.inventory is None
        assert tiny.name == "inv+inventory=tiny"
        assert dict(tiny.scheduler.inventory) == {
            "chromebook": 2,
            "paravance": 1,
        }
        assert dict(tiny.axes)["inventory"] == "tiny"

    def test_spec_key_round_trips_through_json(self):
        from repro.scenarios.spec import ScenarioSpec

        for spec in smoke_sweep().expand():
            clone = ScenarioSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone == spec
            assert clone.spec_key() == spec.spec_key()


class TestValidation:
    def test_unknown_axis_is_rejected(self):
        with pytest.raises(ScenarioError, match="unknown sweep axis"):
            smoke_sweep(axes=(("warp_factor", (1, 2)),))

    def test_duplicate_axis_is_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate sweep axis"):
            smoke_sweep(axes=(("seed", (1,)), ("seed", (2,))))

    def test_empty_axis_is_rejected(self):
        with pytest.raises(ScenarioError, match="has no values"):
            smoke_sweep(axes=(("seed", ()),))

    def test_colliding_name_tokens_are_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate name tokens"):
            smoke_sweep(axes=(("pattern", ("a b", "a-b")),))

    def test_structured_scalar_value_is_rejected(self):
        with pytest.raises(ScenarioError, match="not a JSON scalar"):
            smoke_sweep(axes=(("seed", ({"nested": 1},)),))

    def test_bad_sweep_name_is_rejected(self):
        with pytest.raises(ScenarioError, match="sweep name"):
            smoke_sweep(name="has spaces")

    def test_invalid_grid_point_names_the_point(self):
        sweep = smoke_sweep(axes=(("days", (1, 0)),))
        with pytest.raises(
            ScenarioError, match="invalid grid point 't-grid\\+days=0'"
        ):
            sweep.expand()


class TestRoundTrip:
    def test_to_from_dict_round_trips(self):
        sweep = SweepSpec(
            name="rt",
            description="round trip",
            base="paper-bml",
            axes=(
                ("policy", ("bml",)),
                ("inventory", (("tiny", {"raspberry": 5}),)),
                ("params", (("gentle", {"crowds_per_day": 1}),)),
            ),
            tags=("x",),
        )
        clone = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert clone == sweep
        assert clone.sweep_key() == sweep.sweep_key()
        assert [s.spec_key() for s in clone.expand()] == [
            s.spec_key() for s in sweep.expand()
        ]


class TestRegistry:
    def test_seeded_sweeps_are_registered(self):
        names = scenarios.sweep_names()
        assert "grid-smoke" in names
        assert "fig5-grid" in names
        assert "fleet-grid" in names

    def test_fleet_grid_is_fleet_scale(self):
        assert scenarios.get_sweep("fleet-grid").size >= 256

    def test_unknown_sweep_error_lists_known(self):
        with pytest.raises(ScenarioError, match="known:"):
            scenarios.get_sweep("no-such-sweep")

    def test_duplicate_registration_is_rejected(self):
        sweep = scenarios.get_sweep("grid-smoke")
        with pytest.raises(ScenarioError, match="already registered"):
            scenarios.register_sweep(sweep)
        # replace=True is the escape hatch and must keep the registry sane
        assert scenarios.register_sweep(sweep, replace=True) is sweep

    def test_every_registered_sweep_expands(self):
        for sweep in scenarios.sweeps():
            specs = sweep.expand()
            assert len(specs) == sweep.size
            assert len({s.name for s in specs}) == sweep.size


@pytest.mark.quick
class TestSweepSuite:
    def test_grid_runs_through_the_suite_and_facets(self, infra):
        specs = [
            s.with_days(1)
            for s in smoke_sweep(
                axes=(
                    ("policy", ("bml", "upper-global")),
                    ("seed", (3,)),
                )
            ).expand()
        ]
        # shrink to the cheap pattern workload for speed
        specs = [
            replace(
                s,
                workload=replace(
                    scenarios.get("pattern-steady").workload, seed=s.workload.seed
                ),
            )
            for s in specs
        ]
        runs = scenarios.run_suite(specs, jobs=1, infra=infra)
        from repro.results import SuiteReport

        report = SuiteReport.from_runs(runs)
        assert report.facet_axes() == ["policy", "seed"]
        rows = report.facet_rows("policy")
        assert [r["policy"] for r in rows] == ["bml", "upper-global"]
        assert all(r["n"] == 1 for r in rows)
        with pytest.raises(ValueError, match="no record carries"):
            report.facet_rows("window")
