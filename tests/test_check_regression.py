"""Unit tests for the cross-PR benchmark regression checker."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import check_regression  # noqa: E402
import run_benchmarks  # noqa: E402


def _artifact(path: Path, mins: dict) -> None:
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"min": value}}
            for name, value in mins.items()
        ]
    }
    path.write_text(json.dumps(payload))


class TestCompare:
    def test_flags_only_shared_regressions(self):
        lines, failures = check_regression.compare(
            current={"a": 1.0, "b": 0.5, "new": 9.0},
            previous={"a": 1.0, "b": 0.1, "gone": 1.0},
            threshold=1.3,
        )
        assert failures == ["b"]
        assert any("new benchmark" in line for line in lines)
        assert any("removed" in line for line in lines)

    def test_speedups_and_small_slowdowns_pass(self):
        _, failures = check_regression.compare(
            current={"a": 0.2, "b": 1.2},
            previous={"a": 1.0, "b": 1.0},
            threshold=1.3,
        )
        assert failures == []


class TestMain:
    def test_exit_codes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        prev, cur = tmp_path / "BENCH_PR1.json", tmp_path / "BENCH_PR2.json"
        _artifact(prev, {"bench::x": 1.0, "bench::y": 1.0})
        _artifact(cur, {"bench::x": 1.0, "bench::y": 2.0})
        assert check_regression.main([]) == 1  # y regressed 2x
        assert check_regression.main(["--threshold", "2.5"]) == 0
        _artifact(cur, {"bench::x": 1.0, "bench::y": 1.1})
        assert check_regression.main([]) == 0

    def test_no_previous_artifact_is_ok(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        _artifact(tmp_path / "BENCH_PR1.json", {"bench::x": 1.0})
        assert check_regression.main([]) == 0

    def test_finds_numbered_artifacts_in_order(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        for k in (2, 10, 1):
            _artifact(tmp_path / f"BENCH_PR{k}.json", {"bench::x": float(k)})
        found = check_regression.find_artifacts(tmp_path)
        assert [k for k, _ in found] == [1, 2, 10]
        # newest (PR10) compared against PR2, not PR1
        assert check_regression.main([]) == 1  # 10/2 = 5x slowdown


class TestNextArtifactName:
    def test_infers_highest_plus_one(self, tmp_path):
        for k in (1, 2, 10):
            _artifact(tmp_path / f"BENCH_PR{k}.json", {"bench::x": 1.0})
        (tmp_path / "BENCH_PERF_ONLY.json").write_text("{}")  # never counted
        assert run_benchmarks.next_artifact_name(tmp_path) == "BENCH_PR11.json"

    def test_empty_directory_starts_at_one(self, tmp_path):
        assert run_benchmarks.next_artifact_name(tmp_path) == "BENCH_PR1.json"
