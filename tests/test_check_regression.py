"""Unit tests for the cross-PR benchmark regression checker."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import check_regression  # noqa: E402
import run_benchmarks  # noqa: E402


def _artifact(path: Path, mins: dict) -> None:
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"min": value}}
            for name, value in mins.items()
        ]
    }
    path.write_text(json.dumps(payload))


class TestCompare:
    def test_flags_only_shared_regressions(self):
        lines, failures = check_regression.compare(
            current={"a": 1.0, "b": 0.5, "new": 9.0},
            previous={"a": 1.0, "b": 0.1, "gone": 1.0},
            threshold=1.3,
        )
        assert failures == ["b"]
        assert any("new benchmark" in line for line in lines)
        assert any("removed" in line for line in lines)

    def test_speedups_and_small_slowdowns_pass(self):
        _, failures = check_regression.compare(
            current={"a": 0.2, "b": 1.2},
            previous={"a": 1.0, "b": 1.0},
            threshold=1.3,
        )
        assert failures == []


class TestMain:
    def test_exit_codes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        prev, cur = tmp_path / "BENCH_PR1.json", tmp_path / "BENCH_PR2.json"
        _artifact(prev, {"bench::x": 1.0, "bench::y": 1.0})
        _artifact(cur, {"bench::x": 1.0, "bench::y": 2.0})
        assert check_regression.main(["--no-retry"]) == 1  # y regressed 2x
        assert check_regression.main(["--threshold", "2.5"]) == 0
        _artifact(cur, {"bench::x": 1.0, "bench::y": 1.1})
        assert check_regression.main([]) == 0

    def test_new_benchmarks_never_fail(self, tmp_path, monkeypatch, capsys):
        """Benchmarks absent from the older artifact are graced, not failed.

        The PR 6 case: BENCH_PR6 adds the year-scale replay benchmark,
        which has no baseline in BENCH_PR5 — however slow it is, only
        *shared* benchmarks can regress.
        """
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        _artifact(tmp_path / "BENCH_PR5.json", {"bench::x": 1.0})
        _artifact(
            tmp_path / "BENCH_PR6.json",
            {"bench::x": 1.0, "bench::year": 900.0},
        )
        assert check_regression.main(["--no-retry"]) == 0
        out = capsys.readouterr().out
        assert "bench::year: new benchmark" in out
        assert "1 new (no baseline, graced)" in out

    def test_no_previous_artifact_is_ok(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        _artifact(tmp_path / "BENCH_PR1.json", {"bench::x": 1.0})
        assert check_regression.main([]) == 0

    def test_finds_numbered_artifacts_in_order(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        for k in (2, 10, 1):
            _artifact(tmp_path / f"BENCH_PR{k}.json", {"bench::x": float(k)})
        found = check_regression.find_artifacts(tmp_path)
        assert [k for k, _ in found] == [1, 2, 10]
        # newest (PR10) compared against PR2, not PR1
        assert check_regression.main(["--no-retry"]) == 1  # 10/2 slowdown


class TestBestOfTwoRetry:
    """Flagged benchmarks are re-measured once before the check fails."""

    def _artifacts(self, tmp_path):
        _artifact(tmp_path / "BENCH_PR1.json", {"bench::x": 1.0, "bench::y": 1.0})
        _artifact(tmp_path / "BENCH_PR2.json", {"bench::x": 1.0, "bench::y": 2.0})

    def test_noise_clears_on_remeasure(self, tmp_path, monkeypatch, capsys):
        self._artifacts(tmp_path)
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        reruns = []

        def fake_rerun(names):
            reruns.append(list(names))
            return {"bench::y": 1.05}  # the fresh round is fine -> noise

        assert check_regression.main([], rerun=fake_rerun) == 0
        assert reruns == [["bench::y"]]  # only the flagged one re-measured
        out = capsys.readouterr().out
        assert "best-of-2" in out and "OK" in out

    def test_real_regression_still_fails(self, tmp_path, monkeypatch):
        self._artifacts(tmp_path)
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        assert (
            check_regression.main([], rerun=lambda names: {"bench::y": 1.9})
            == 1
        )

    def test_failed_rerun_keeps_recorded_timing(self, tmp_path, monkeypatch):
        self._artifacts(tmp_path)
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        # rerun machinery broke (no entries): the recorded min stands
        assert check_regression.main([], rerun=lambda names: {}) == 1

    def test_best_of_two_never_worsens(self, tmp_path, monkeypatch):
        self._artifacts(tmp_path)
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        # fresh round slower than recorded: min() keeps the recorded 2.0,
        # still a regression
        assert (
            check_regression.main([], rerun=lambda names: {"bench::y": 5.0})
            == 1
        )

    def test_no_retry_flag_skips_remeasure(self, tmp_path, monkeypatch):
        self._artifacts(tmp_path)
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)

        def explode(names):  # pragma: no cover - must not run
            raise AssertionError("--no-retry must not re-measure")

        assert check_regression.main(["--no-retry"], rerun=explode) == 1

    def test_historical_artifact_is_not_whitewashed(
        self, tmp_path, monkeypatch, capsys
    ):
        """Auditing an old recording must not re-measure today's code."""
        self._artifacts(tmp_path)
        cur = tmp_path / "BENCH_PR2.json"
        payload = json.loads(cur.read_text())
        payload["commit_info"] = {"id": "0ld5ha"}
        cur.write_text(json.dumps(payload))
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        monkeypatch.setattr(
            check_regression, "head_commit", lambda root=None: "n3wsha"
        )

        def explode(names):  # pragma: no cover - must not run
            raise AssertionError("historical audit must not re-measure")

        assert check_regression.main([], rerun=explode) == 1
        assert "skipping best-of-2" in capsys.readouterr().out

    def test_matching_commit_still_retries(self, tmp_path, monkeypatch):
        self._artifacts(tmp_path)
        cur = tmp_path / "BENCH_PR2.json"
        payload = json.loads(cur.read_text())
        payload["commit_info"] = {"id": "5amesha"}
        cur.write_text(json.dumps(payload))
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        monkeypatch.setattr(
            check_regression, "head_commit", lambda root=None: "5amesha"
        )
        assert (
            check_regression.main([], rerun=lambda names: {"bench::y": 1.0})
            == 0
        )


class TestNextArtifactName:
    def test_infers_highest_plus_one(self, tmp_path):
        for k in (1, 2, 10):
            _artifact(tmp_path / f"BENCH_PR{k}.json", {"bench::x": 1.0})
        (tmp_path / "BENCH_PERF_ONLY.json").write_text("{}")  # never counted
        assert run_benchmarks.next_artifact_name(tmp_path) == "BENCH_PR11.json"
        assert run_benchmarks.highest_recorded(tmp_path) == 10

    def test_empty_directory_starts_at_one(self, tmp_path):
        assert run_benchmarks.next_artifact_name(tmp_path) == "BENCH_PR1.json"
        assert run_benchmarks.highest_recorded(tmp_path) is None


def _stamped(path: Path, commit: str) -> None:
    path.write_text(
        json.dumps({"benchmarks": [], "commit_info": {"id": commit}})
    )


class TestSamePrRerunGuard:
    """Rerunning on the recorded HEAD must not mint the next PR artifact."""

    def test_recorded_head_commit_reads_highest_artifact(self, tmp_path):
        _stamped(tmp_path / "BENCH_PR1.json", "aaa")
        _stamped(tmp_path / "BENCH_PR3.json", "ccc")
        assert run_benchmarks.recorded_head_commit(tmp_path) == "ccc"

    def test_missing_or_malformed_artifacts_read_as_none(self, tmp_path):
        assert run_benchmarks.recorded_head_commit(tmp_path) is None
        (tmp_path / "BENCH_PR1.json").write_text("{not json")
        assert run_benchmarks.recorded_head_commit(tmp_path) is None
        _artifact(tmp_path / "BENCH_PR2.json", {"bench::x": 1.0})  # no commit_info
        assert run_benchmarks.recorded_head_commit(tmp_path) is None

    def test_same_commit_rerun_is_refused(self, tmp_path, monkeypatch, capsys):
        _stamped(tmp_path / "BENCH_PR2.json", "deadbeef")
        monkeypatch.setattr(run_benchmarks, "ROOT", tmp_path)
        monkeypatch.setattr(
            run_benchmarks, "current_commit", lambda root=None: "deadbeef"
        )
        with pytest.raises(SystemExit):
            run_benchmarks.main([])
        err = capsys.readouterr().err
        assert "--pr 2" in err and "BENCH_PR3.json" in err

    def test_new_commit_infers_next_artifact(self, tmp_path, monkeypatch):
        _stamped(tmp_path / "BENCH_PR2.json", "deadbeef")
        monkeypatch.setattr(run_benchmarks, "ROOT", tmp_path)
        monkeypatch.setattr(
            run_benchmarks, "current_commit", lambda root=None: "0ddc0ffee"
        )
        calls = []
        monkeypatch.setattr(
            run_benchmarks, "_run", lambda args, env: (calls.append(args), 0)[1]
        )
        assert run_benchmarks.main([]) == 0
        assert any("BENCH_PR3.json" in arg for call in calls for arg in call)

    def test_explicit_pr_rerecords_same_commit(self, tmp_path, monkeypatch):
        _stamped(tmp_path / "BENCH_PR2.json", "deadbeef")
        monkeypatch.setattr(run_benchmarks, "ROOT", tmp_path)
        monkeypatch.setattr(
            run_benchmarks, "current_commit", lambda root=None: "deadbeef"
        )
        calls = []
        monkeypatch.setattr(
            run_benchmarks, "_run", lambda args, env: (calls.append(args), 0)[1]
        )
        assert run_benchmarks.main(["--pr", "2"]) == 0
        assert any("BENCH_PR2.json" in arg for call in calls for arg in call)

    def test_outside_git_checkout_never_blocks(self, tmp_path, monkeypatch):
        _stamped(tmp_path / "BENCH_PR2.json", "deadbeef")
        monkeypatch.setattr(run_benchmarks, "ROOT", tmp_path)
        monkeypatch.setattr(
            run_benchmarks, "current_commit", lambda root=None: None
        )
        calls = []
        monkeypatch.setattr(
            run_benchmarks, "_run", lambda args, env: (calls.append(args), 0)[1]
        )
        assert run_benchmarks.main([]) == 0
        assert any("BENCH_PR3.json" in arg for call in calls for arg in call)


class TestTolerantLoading:
    """PR 7: partial or damaged artifacts degrade with warnings, never crash."""

    def test_missing_file_warns_and_reads_empty(self, tmp_path, capsys):
        mins = check_regression.load_mins(tmp_path / "nope.json")
        assert mins == {}
        assert "unreadable artifact" in capsys.readouterr().out

    def test_malformed_json_warns_and_reads_empty(self, tmp_path, capsys):
        path = tmp_path / "BENCH_PR9.json"
        path.write_text("{ torn write")
        assert check_regression.load_mins(path) == {}
        assert "unreadable artifact" in capsys.readouterr().out

    def test_missing_benchmark_list_warns(self, tmp_path, capsys):
        path = tmp_path / "BENCH_PR9.json"
        path.write_text(json.dumps({"machine_info": {}}))
        assert check_regression.load_mins(path) == {}
        assert "no benchmark list" in capsys.readouterr().out

    def test_partial_entries_are_skipped_not_fatal(self, tmp_path, capsys):
        path = tmp_path / "BENCH_PR9.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"fullname": "bench::ok", "stats": {"min": 0.5}},
                        {"fullname": "bench::no-stats"},
                        "not-a-dict",
                        {"fullname": "bench::bad", "stats": {"min": "oops"}},
                    ]
                }
            )
        )
        mins = check_regression.load_mins(path)
        assert mins == {"bench::ok": 0.5}
        assert "non-numeric min" in capsys.readouterr().out

    def test_unreadable_current_artifact_passes_with_warning(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        _artifact(tmp_path / "BENCH_PR1.json", {"bench::x": 1.0})
        (tmp_path / "BENCH_PR2.json").write_text("garbage")
        assert check_regression.main([]) == 0
        out = capsys.readouterr().out
        assert "unreadable artifact" in out
        assert "missing from BENCH_PR2.json" in out


class TestMissingGroups:
    def test_lost_group_is_named(self):
        groups = check_regression.missing_groups(
            current={"a.py::x": 1.0},
            previous={"a.py::x": 1.0, "b.py::y": 1.0, "b.py::z": 2.0},
        )
        assert groups == ["b.py"]

    def test_no_warning_when_groups_survive(self):
        assert (
            check_regression.missing_groups(
                current={"a.py::x": 1.0, "b.py::y": 5.0},
                previous={"a.py::x": 1.0, "b.py::z": 2.0},
            )
            == []
        )

    def test_main_warns_about_lost_group(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(check_regression, "ROOT", tmp_path)
        _artifact(
            tmp_path / "BENCH_PR1.json",
            {"bench_a.py::x": 1.0, "bench_b.py::y": 1.0},
        )
        _artifact(tmp_path / "BENCH_PR2.json", {"bench_a.py::x": 1.0})
        assert check_regression.main([]) == 0
        out = capsys.readouterr().out
        assert "benchmark group bench_b.py is missing from BENCH_PR2.json" in out
        assert "not compared" in out
