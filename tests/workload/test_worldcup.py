"""Unit tests for the synthetic World Cup 98 workload generator."""

import numpy as np
import pytest

from repro.workload.trace import SECONDS_PER_DAY
from repro.workload.worldcup import PAPER_DAYS, MatchEvent, WorldCupSynthesizer, synthesize


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = synthesize(n_days=3, seed=11)
        b = synthesize(n_days=3, seed=11)
        assert np.array_equal(a.values, b.values)

    def test_different_seed_different_trace(self):
        a = synthesize(n_days=3, seed=11)
        b = synthesize(n_days=3, seed=12)
        assert not np.array_equal(a.values, b.values)


class TestShape:
    def test_paper_length_default(self):
        synth = WorldCupSynthesizer()
        assert synth.n_days == PAPER_DAYS == 87

    def test_duration_and_rate(self):
        t = synthesize(n_days=4, seed=0)
        assert len(t) == 4 * SECONDS_PER_DAY
        assert t.timestep == 1.0

    def test_peak_calibrated(self):
        t = synthesize(n_days=10, seed=5, peak_rate=4321.0)
        assert t.peak == pytest.approx(4321.0)

    def test_t0_is_day_six(self):
        t = synthesize(n_days=2, seed=0)
        assert t.t0 == 5 * SECONDS_PER_DAY

    def test_load_nonnegative(self):
        t = synthesize(n_days=5, seed=9)
        assert np.all(t.values >= 0.0)

    def test_diurnal_structure(self):
        t = synthesize(n_days=6, seed=3)
        day = t.day(1)
        night = day.values[2 * 3600 : 4 * 3600].mean()
        afternoon = day.values[14 * 3600 : 16 * 3600].mean()
        assert afternoon > 2 * night

    def test_growth_toward_final(self):
        synth = WorldCupSynthesizer(seed=8)
        t = synth.build()
        pm = t.per_day_max()
        early = pm[:10].mean()
        late = pm[synth.final_day - 5 : synth.final_day + 1].mean()
        assert late > 2 * early

    def test_decay_after_final(self):
        synth = WorldCupSynthesizer(seed=8)
        pm = synth.build().per_day_max()
        assert pm[-3:].mean() < pm[synth.final_day] * 0.6


class TestSchedule:
    def test_final_is_heaviest_match(self):
        synth = WorldCupSynthesizer(seed=1)
        sched = synth.schedule()
        weights = [e.weight for e in sched]
        assert max(weights) == sched[-1].weight == 4.0

    def test_matches_within_trace(self):
        synth = WorldCupSynthesizer(n_days=50, seed=1)
        assert all(e.day < 50 for e in synth.schedule())

    def test_group_stage_has_multiple_matches_per_day(self):
        synth = WorldCupSynthesizer(seed=1)
        sched = synth.schedule()
        start = synth.tournament_start
        first_day = [e for e in sched if e.day == start]
        assert 2 <= len(first_day) <= 3

    def test_match_event_start_seconds(self):
        e = MatchEvent(day=2, hour=21.0, weight=1.0)
        assert e.start_s == 2 * SECONDS_PER_DAY + 21 * 3600


class TestValidation:
    def test_rejects_bad_days(self):
        with pytest.raises(ValueError):
            WorldCupSynthesizer(n_days=0)

    def test_rejects_bad_night_fraction(self):
        with pytest.raises(ValueError):
            WorldCupSynthesizer(night_fraction=0.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            WorldCupSynthesizer(peak_rate=-1.0)

    def test_rejects_late_tournament_start(self):
        with pytest.raises(ValueError):
            WorldCupSynthesizer(n_days=10, tournament_start=10)

    def test_short_traces_scale_tournament_start(self):
        synth = WorldCupSynthesizer(n_days=6)
        assert 0 <= synth.tournament_start < 6
