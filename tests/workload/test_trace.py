"""Unit tests for the LoadTrace container."""

import numpy as np
import pytest

from repro.workload.trace import SECONDS_PER_DAY, LoadTrace, TraceError


def trace_of(values, **kw):
    return LoadTrace(np.asarray(values, dtype=float), **kw)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            trace_of([])

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            trace_of([1.0, -0.1])

    def test_rejects_nan_and_inf(self):
        with pytest.raises(TraceError):
            trace_of([1.0, float("nan")])
        with pytest.raises(TraceError):
            trace_of([1.0, float("inf")])

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            LoadTrace(np.ones((2, 2)))

    def test_rejects_bad_timestep(self):
        with pytest.raises(TraceError):
            trace_of([1.0], timestep=0.0)

    def test_values_are_immutable(self):
        t = trace_of([1.0, 2.0])
        with pytest.raises(ValueError):
            t.values[0] = 9.0

    def test_input_array_not_aliased(self):
        arr = np.array([1.0, 2.0])
        t = LoadTrace(arr)
        arr[0] = 9.0
        assert t[0] == 1.0


class TestBasics:
    def test_len_duration_peak_mean(self):
        t = trace_of([1.0, 3.0], timestep=2.0)
        assert len(t) == 2
        assert t.duration == 4.0
        assert t.peak == 3.0
        assert t.mean == 2.0
        assert t.total_demand == pytest.approx(8.0)

    def test_indexing(self):
        t = trace_of([1.0, 2.0, 3.0])
        assert t[1] == 2.0

    def test_slicing_preserves_offset(self):
        t = trace_of([1.0, 2.0, 3.0, 4.0], t0=100.0)
        s = t[1:3]
        assert isinstance(s, LoadTrace)
        assert list(s.values) == [2.0, 3.0]
        assert s.t0 == 101.0

    def test_strided_slicing_rejected(self):
        with pytest.raises(TraceError):
            trace_of([1.0, 2.0, 3.0])[::2]

    def test_stats_keys(self):
        s = trace_of([1.0, 2.0]).stats()
        assert {"peak", "mean", "p95", "p99", "samples"} <= set(s)


class TestDays:
    def test_day_views(self):
        values = np.concatenate(
            [np.full(SECONDS_PER_DAY, 1.0), np.full(SECONDS_PER_DAY, 2.0)]
        )
        t = LoadTrace(values)
        assert t.n_days == 2
        assert t.day(1).mean == 2.0
        assert t.day(1).t0 == SECONDS_PER_DAY

    def test_day_out_of_range(self):
        t = LoadTrace(np.ones(SECONDS_PER_DAY))
        with pytest.raises(TraceError):
            t.day(1)

    def test_per_day_max_with_partial_tail(self):
        values = np.concatenate(
            [np.full(SECONDS_PER_DAY, 5.0), np.full(100, 7.0)]
        )
        pm = LoadTrace(values).per_day_max()
        assert list(pm) == [5.0, 7.0]

    def test_per_day_mean(self):
        values = np.concatenate(
            [np.full(SECONDS_PER_DAY, 4.0), np.full(SECONDS_PER_DAY, 6.0)]
        )
        assert list(LoadTrace(values).per_day_mean()) == [4.0, 6.0]

    def test_days_iterator(self):
        t = LoadTrace(np.ones(2 * SECONDS_PER_DAY))
        assert len(list(t.days())) == 2

    def test_samples_per_day_requires_divisor(self):
        t = trace_of(np.ones(10), timestep=7.0)
        with pytest.raises(TraceError):
            t.samples_per_day


class TestTransforms:
    def test_scaled(self):
        t = trace_of([1.0, 2.0]).scaled(3.0)
        assert list(t.values) == [3.0, 6.0]

    def test_scaled_to_peak(self):
        t = trace_of([1.0, 5.0]).scaled_to_peak(10.0)
        assert t.peak == 10.0

    def test_scaled_to_peak_rejects_zero_trace(self):
        with pytest.raises(TraceError):
            trace_of([0.0, 0.0]).scaled_to_peak(5.0)

    def test_clipped(self):
        t = trace_of([1.0, 9.0]).clipped(5.0)
        assert t.peak == 5.0

    def test_resampled_max_preserves_peak(self):
        t = trace_of([1.0, 9.0, 2.0, 3.0])
        r = t.resampled(2.0, how="max")
        assert list(r.values) == [9.0, 3.0]
        assert r.timestep == 2.0

    def test_resampled_mean_preserves_demand(self):
        t = trace_of([1.0, 3.0, 5.0, 7.0])
        r = t.resampled(2.0, how="mean")
        assert r.total_demand == pytest.approx(t.total_demand)

    def test_resample_partial_tail(self):
        t = trace_of([1.0, 2.0, 9.0])
        r = t.resampled(2.0, how="max")
        assert list(r.values) == [2.0, 9.0]

    def test_resample_rejects_non_multiple(self):
        with pytest.raises(TraceError):
            trace_of([1.0, 2.0]).resampled(1.5)

    def test_resample_rejects_unknown_how(self):
        with pytest.raises(TraceError):
            trace_of([1.0, 2.0]).resampled(2.0, how="median")

    def test_concatenated(self):
        a = trace_of([1.0, 2.0])
        b = trace_of([3.0])
        assert list(a.concatenated(b).values) == [1.0, 2.0, 3.0]

    def test_concatenated_requires_same_step(self):
        with pytest.raises(TraceError):
            trace_of([1.0]).concatenated(trace_of([1.0], timestep=2.0))


class TestIO:
    def test_csv_round_trip(self, tmp_path):
        t = trace_of([1.5, 2.5, 3.5], t0=10.0)
        path = tmp_path / "t.csv"
        t.to_csv(path)
        back = LoadTrace.from_csv(path)
        assert np.allclose(back.values, t.values)
        assert back.t0 == 10.0
        assert back.timestep == 1.0

    def test_csv_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,load\n")
        with pytest.raises(TraceError):
            LoadTrace.from_csv(path)

    def test_npz_round_trip(self, tmp_path):
        t = trace_of([1.0, 2.0], timestep=5.0, name="x", t0=3.0)
        path = tmp_path / "t.npz"
        t.to_npz(path)
        back = LoadTrace.from_npz(path)
        assert np.array_equal(back.values, t.values)
        assert (back.timestep, back.t0, back.name) == (5.0, 3.0, "x")


class TestIngestErrors:
    """PR 7: malformed trace files raise one typed error with context."""

    def test_csv_nan_load_names_file_and_line(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        path = tmp_path / "bad.csv"
        path.write_text("time_s,load\n0,1.0\n1,nan\n")
        with pytest.raises(TraceIngestError, match=r"line 3: non-finite"):
            LoadTrace.from_csv(path)
        with pytest.raises(TraceIngestError, match="bad.csv"):
            LoadTrace.from_csv(path)

    def test_csv_negative_load_names_file_and_line(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        path = tmp_path / "neg.csv"
        path.write_text("time_s,load\n0,1.0\n1,-2.5\n")
        with pytest.raises(TraceIngestError, match=r"line 3: negative load"):
            LoadTrace.from_csv(path)

    def test_csv_empty_raises_ingest_error(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        path = tmp_path / "empty.csv"
        path.write_text("time,load\n")
        with pytest.raises(TraceIngestError, match="no samples"):
            LoadTrace.from_csv(path)

    def test_npz_truncated_archive_is_typed(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        t = trace_of([1.0, 2.0, 3.0])
        path = tmp_path / "t.npz"
        t.to_npz(path)
        path.write_bytes(path.read_bytes()[:20])  # torn copy
        with pytest.raises(TraceIngestError, match="unreadable trace archive"):
            LoadTrace.from_npz(path)

    def test_npz_invalid_sample_named_by_index(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            values=np.array([1.0, np.nan, 2.0]),
            timestep=1.0,
            t0=0.0,
            name=np.asarray("x"),
        )
        with pytest.raises(TraceIngestError, match="sample 1"):
            LoadTrace.from_npz(path)

    def test_ingest_error_is_a_trace_error(self):
        from repro.workload import TraceIngestError

        assert issubclass(TraceIngestError, TraceError)
