"""Unit tests for the WC98 binary log format reader/writer."""

import gzip

import numpy as np
import pytest

from repro.workload.wc98format import (
    WC98_RECORD_DTYPE,
    read_records,
    read_trace,
    records_to_trace,
    write_records,
)


@pytest.fixture()
def log_timestamps(rng):
    """Request timestamps with a known per-second histogram."""
    base = 894_000_000  # May 1998
    seconds = rng.integers(0, 120, size=5000)
    return np.sort(base + seconds)


class TestFormat:
    def test_record_is_twenty_bytes(self):
        assert WC98_RECORD_DTYPE.itemsize == 20

    def test_round_trip_plain(self, tmp_path, log_timestamps):
        path = tmp_path / "day06.log"
        n = write_records(path, log_timestamps)
        records = read_records(path)
        assert len(records) == n == len(log_timestamps)
        assert np.array_equal(
            records["timestamp"].astype(np.int64), log_timestamps
        )

    def test_round_trip_gzip(self, tmp_path, log_timestamps):
        path = tmp_path / "day06.log.gz"
        write_records(path, log_timestamps)
        # really gzip on disk
        with path.open("rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        records = read_records(path)
        assert len(records) == len(log_timestamps)

    def test_big_endian_layout(self, tmp_path):
        path = tmp_path / "one.log"
        write_records(path, np.array([0x01020304]))
        raw = path.read_bytes()
        assert raw[:4] == bytes([1, 2, 3, 4])  # big-endian timestamp

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_bytes(b"\x00" * 30)  # not a multiple of 20
        with pytest.raises(ValueError):
            read_records(path)


class TestAggregation:
    def test_counts_per_second(self, tmp_path):
        base = 894_000_000
        ts = np.array([base, base, base, base + 2])  # 3 reqs, 0, 1 req
        trace = records_to_trace(
            np.rec.fromarrays(
                [ts, ts * 0, ts * 0, ts * 0, ts * 0, ts * 0, ts * 0, ts * 0],
                dtype=WC98_RECORD_DTYPE,
            )
        )
        assert list(trace.values) == [3.0, 0.0, 1.0]
        assert trace.t0 == base

    def test_histogram_matches_bincount(self, tmp_path, log_timestamps, rng):
        path = tmp_path / "day.log"
        write_records(path, log_timestamps, rng)
        trace = read_trace(path)
        lo = log_timestamps.min()
        expected = np.bincount(log_timestamps - lo)
        assert np.array_equal(trace.values[: len(expected)], expected)
        assert trace.total_demand == len(log_timestamps)

    def test_window_cropping(self, log_timestamps):
        records = np.zeros(len(log_timestamps), dtype=WC98_RECORD_DTYPE)
        records["timestamp"] = log_timestamps
        lo = int(log_timestamps.min())
        trace = records_to_trace(records, t_start=lo + 10, t_end=lo + 20)
        assert len(trace) == 10
        assert trace.t0 == lo + 10

    def test_empty_window_rejected(self, log_timestamps):
        records = np.zeros(1, dtype=WC98_RECORD_DTYPE)
        with pytest.raises(ValueError):
            records_to_trace(records, t_start=10, t_end=10)

    def test_no_records_rejected(self):
        with pytest.raises(ValueError):
            records_to_trace(np.zeros(0, dtype=WC98_RECORD_DTYPE))


class TestMultiFile:
    def test_concatenates_daily_files(self, tmp_path, rng):
        base = 894_000_000
        day1 = base + rng.integers(0, 60, 200)
        day2 = base + 86_400 + rng.integers(0, 60, 300)
        p1, p2 = tmp_path / "d1.log", tmp_path / "d2.log.gz"
        write_records(p1, np.sort(day1), rng)
        write_records(p2, np.sort(day2), rng)
        trace = read_trace([p1, p2])
        assert trace.total_demand == 500
        # the gap between the days is zero-filled
        assert trace.values[3600] == 0.0

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            read_trace([])

    def test_end_to_end_with_scheduler(self, tmp_path, infra, rng):
        """An archive-format file drives the whole pipeline."""
        from repro.core.scheduler import BMLScheduler
        from repro.sim.datacenter import execute_plan

        base = 894_000_000
        # one hour of Poisson-ish traffic around 60 req/s
        ts = np.repeat(
            base + np.arange(3600), rng.poisson(60.0, 3600)
        )
        path = tmp_path / "hour.log.gz"
        write_records(path, ts, rng)
        trace = read_trace(path)
        res = execute_plan(BMLScheduler(infra).plan(trace), trace)
        assert res.total_energy > 0
        assert res.qos(trace).served_fraction > 0.999


class TestIngestErrors:
    """PR 7: broken archives raise TraceIngestError with byte context."""

    def test_truncated_names_offset_and_fragment(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        path = tmp_path / "torn.log"
        path.write_bytes(b"\x00" * 47)  # 2 records + 7 trailing bytes
        with pytest.raises(
            TraceIngestError,
            match=r"truncated WC98 archive: 47 bytes .*"
            r"\(7 trailing bytes at offset 40\)",
        ):
            read_records(path)

    def test_corrupt_gzip_is_typed(self, tmp_path):
        from repro.workload.trace import TraceIngestError

        path = tmp_path / "bad.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b"\x00" * 40)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn download
        with pytest.raises(TraceIngestError, match="unreadable WC98 archive"):
            read_records(path)
