"""Unit tests for synthetic load pattern generators."""

import numpy as np
import pytest

from repro.workload import patterns
from repro.workload.trace import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY


class TestConstant:
    def test_level(self):
        out = patterns.constant(100, 5.0)
        assert out.shape == (100,) and np.all(out == 5.0)

    def test_rejects_negative_level_and_duration(self):
        with pytest.raises(ValueError):
            patterns.constant(10, -1.0)
        with pytest.raises(ValueError):
            patterns.constant(0, 1.0)


class TestDiurnal:
    def test_peak_at_peak_hour(self):
        out = patterns.diurnal(DAY, low=10.0, high=100.0, peak_hour=15.0)
        assert np.argmax(out) == 15 * 3600
        assert out.max() == pytest.approx(100.0)

    def test_trough_half_day_later(self):
        out = patterns.diurnal(DAY, low=10.0, high=100.0, peak_hour=15.0)
        assert out[3 * 3600] == pytest.approx(10.0)  # 3 am

    def test_sharpness_narrows_peak(self):
        soft = patterns.diurnal(DAY, 0.0, 1.0, sharpness=1.0)
        sharp = patterns.diurnal(DAY, 0.0, 1.0, sharpness=3.0)
        assert sharp.mean() < soft.mean()
        assert sharp.max() == pytest.approx(soft.max())

    def test_validation(self):
        with pytest.raises(ValueError):
            patterns.diurnal(DAY, 10.0, 5.0)
        with pytest.raises(ValueError):
            patterns.diurnal(DAY, 1.0, 2.0, sharpness=0.0)


class TestWeekly:
    def test_weekend_levels(self):
        out = patterns.weekly(7 * DAY, 1.0, 0.5, start_weekday=0)
        assert out[0] == 1.0                  # Monday
        assert out[5 * DAY] == 0.5            # Saturday
        assert out[6 * DAY + 100] == 0.5      # Sunday

    def test_start_weekday_shifts(self):
        out = patterns.weekly(2 * DAY, 1.0, 0.5, start_weekday=5)
        assert out[0] == 0.5                  # starts on Saturday


class TestTrend:
    def test_linear_endpoints(self):
        out = patterns.linear_trend(100, 1.0, 3.0)
        assert out[0] == 1.0 and out[-1] == 3.0


class TestFlashCrowd:
    def test_shape(self):
        out = patterns.flash_crowd(
            10_000, at_s=1000, ramp_s=100, hold_s=500, decay_s=200, amplitude=50.0
        )
        assert out[999] == 0.0
        assert out[1050] == pytest.approx(25.0)  # mid-ramp
        assert out[1100] == pytest.approx(50.0)  # plateau start
        assert out[1599] == pytest.approx(50.0)  # plateau end
        assert 0 < out[1700] < 50.0              # decaying

    def test_in_place_matches_full(self):
        full = patterns.flash_crowd(5000, 100, 50, 200, 100, 10.0)
        acc = np.zeros(5000)
        patterns.add_flash_crowd(acc, 100, 50, 200, 100, 10.0)
        assert np.allclose(acc, full)

    def test_event_beyond_horizon_is_noop(self):
        acc = np.zeros(100)
        patterns.add_flash_crowd(acc, 200, 10, 10, 10, 5.0)
        assert np.all(acc == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            patterns.flash_crowd(100, 10, -1, 10, 10, 5.0)


class TestBursts:
    def test_sum_of_events(self):
        events = [(100.0, 10.0), (100.0, 5.0)]
        out = patterns.bursts(1000, events, ramp_s=0.0, hold_s=100.0, decay_s=0.0)
        assert out[150] == pytest.approx(15.0)

    def test_empty_events(self):
        assert np.all(patterns.bursts(100, []) == 0.0)


class TestMicroBursts:
    def test_multiplier_at_least_one(self, rng):
        out = patterns.micro_bursts(DAY, rng, rate_per_day=10.0)
        assert np.all(out >= 1.0)

    def test_zero_rate_is_flat(self, rng):
        assert np.all(patterns.micro_bursts(DAY, rng, rate_per_day=0.0) == 1.0)

    def test_deterministic_given_rng_seed(self):
        a = patterns.micro_bursts(DAY, np.random.default_rng(4), 5.0)
        b = patterns.micro_bursts(DAY, np.random.default_rng(4), 5.0)
        assert np.array_equal(a, b)

    def test_dispersion_varies_days(self):
        rng = np.random.default_rng(0)
        out = patterns.micro_bursts(
            10 * DAY, rng, rate_per_day=6.0, day_dispersion=2.0
        )
        per_day = out.reshape(10, DAY)
        activity = (per_day > 1.0).sum(axis=1)
        assert activity.std() > 0  # some days calm, some stormy

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            patterns.micro_bursts(DAY, rng, rate_per_day=-1.0)
        with pytest.raises(ValueError):
            patterns.micro_bursts(DAY, rng, day_dispersion=-0.5)


class TestNoise:
    def test_multiplicative_noise_mean_near_one(self, rng):
        out = patterns.multiplicative_noise(100_000, rng, sigma=0.2)
        assert out.mean() == pytest.approx(1.0, abs=0.01)
        assert np.all(out > 0)

    def test_multiplicative_zero_sigma(self, rng):
        assert np.all(patterns.multiplicative_noise(100, rng, 0.0) == 1.0)

    def test_heteroskedastic_day_cap(self):
        rng = np.random.default_rng(1)
        out = patterns.heteroskedastic_noise(
            5 * DAY, rng, sigma=0.3, day_dispersion=1.0, day_sigma_cap=0.3
        )
        per_day_std = out.reshape(5, DAY).std(axis=1)
        # lognormal with sigma <= 0.3 has std <= ~0.31
        assert np.all(per_day_std < 0.35)

    def test_heteroskedastic_mean_near_one(self):
        rng = np.random.default_rng(2)
        out = patterns.heteroskedastic_noise(2 * DAY, rng, sigma=0.1)
        assert out.mean() == pytest.approx(1.0, abs=0.01)

    def test_ar1_is_smooth(self, rng):
        out = patterns.ar1_noise(10_000, rng, sigma=0.1, corr=0.999)
        step_var = np.diff(out).std()
        total_var = out.std()
        assert step_var < 0.2 * total_var

    def test_ar1_never_negative(self, rng):
        out = patterns.ar1_noise(10_000, rng, sigma=1.0, corr=0.9)
        assert np.all(out >= 0.0)

    def test_ar1_validation(self, rng):
        with pytest.raises(ValueError):
            patterns.ar1_noise(100, rng, corr=1.0)


class TestCompose:
    def test_base_times_multipliers_plus_addends(self):
        base = np.full(4, 10.0)
        out = patterns.compose(base, [np.full(4, 2.0)], [np.full(4, 1.0)])
        assert np.all(out == 21.0)

    def test_clips_at_zero(self):
        out = patterns.compose(np.full(3, 1.0), [], [np.full(3, -5.0)])
        assert np.all(out == 0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            patterns.compose(np.ones(3), [np.ones(4)])
        with pytest.raises(ValueError):
            patterns.compose(np.ones(3), [], [np.ones(4)])

    def test_make_trace_wraps(self):
        t = patterns.make_trace(np.ones(10), "x", t0=5.0)
        assert t.name == "x" and t.t0 == 5.0
