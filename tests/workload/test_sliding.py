"""Unit tests for sliding-window maxima."""

import numpy as np
import pytest

from repro.workload.sliding import (
    lookahead_max,
    lookahead_max_reference,
    trailing_max,
)


def naive_lookahead(arr, w):
    return np.array([arr[t : t + w].max() for t in range(len(arr))])


def naive_trailing(arr, w):
    return np.array([arr[max(0, t - w + 1) : t + 1].max() for t in range(len(arr))])


class TestLookahead:
    @pytest.mark.parametrize("window", [1, 2, 3, 7, 100, 378, 10_000])
    def test_matches_naive(self, rng, window):
        arr = rng.random(2000)
        assert np.array_equal(lookahead_max(arr, window), naive_lookahead(arr, window))

    def test_reference_matches_fast(self, rng):
        arr = rng.random(3000)
        for w in (1, 5, 64, 377, 378):
            assert np.array_equal(
                lookahead_max(arr, w), lookahead_max_reference(arr, w)
            )

    def test_window_one_identity(self, rng):
        arr = rng.random(50)
        assert np.array_equal(lookahead_max(arr, 1), arr)

    def test_window_longer_than_series(self):
        arr = np.array([3.0, 1.0, 2.0])
        out = lookahead_max(arr, 100)
        assert list(out) == [3.0, 2.0, 2.0]

    def test_constant_series(self):
        arr = np.full(10, 4.2)
        assert np.all(lookahead_max(arr, 5) == 4.2)

    def test_handles_ties(self):
        arr = np.array([2.0, 2.0, 2.0, 1.0])
        assert list(lookahead_max(arr, 2)) == [2.0, 2.0, 2.0, 1.0]

    def test_empty_series(self):
        out = lookahead_max(np.array([]), 5)
        assert out.size == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            lookahead_max(rng.random(10), 0)
        with pytest.raises(ValueError):
            lookahead_max(rng.random((2, 5)), 3)

    def test_never_below_input(self, rng):
        arr = rng.random(500)
        assert np.all(lookahead_max(arr, 17) >= arr)


class TestTrailing:
    @pytest.mark.parametrize("window", [1, 3, 50, 5000])
    def test_matches_naive(self, rng, window):
        arr = rng.random(1000)
        assert np.array_equal(trailing_max(arr, window), naive_trailing(arr, window))

    def test_mirror_of_lookahead(self, rng):
        arr = rng.random(400)
        w = 13
        assert np.array_equal(
            trailing_max(arr, w), lookahead_max(arr[::-1], w)[::-1]
        )
