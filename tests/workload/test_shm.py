"""Shared-memory trace segments: publish, attach, release (PR 8).

The zero-copy fan-out path rests on three promises tested here: an
attached trace is **bit-identical** to the trace that was shared, the
attach is a genuine zero-copy mapping (no float64 duplicate), and the
segment lifecycle never leaks ``/dev/shm`` entries — release is
idempotent and the owner's unlink wins over lingering attachments.
"""

import glob

import numpy as np
import pytest

from repro.workload.trace import (
    SHM_PREFIX,
    LoadTrace,
    SharedTraceHandle,
    TraceError,
    attach_trace,
    release_segment,
    share_trace,
    shm_stats,
)
from repro.workload.worldcup import synthesize


def _shm_entries():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.fixture()
def trace():
    return synthesize(n_days=1, seed=42, peak_rate=1500.0)


class TestShareAttach:
    def test_round_trip_is_bit_identical(self, trace):
        handle = share_trace(trace)
        try:
            attached = attach_trace(handle)
            assert np.array_equal(attached.values, trace.values)
            assert attached.timestep == trace.timestep
            assert attached.name == trace.name
            assert attached.t0 == trace.t0
        finally:
            release_segment(handle)

    def test_attach_is_zero_copy_and_read_only(self, trace):
        handle = share_trace(trace)
        try:
            attached = attach_trace(handle)
            assert not attached.values.flags.writeable
            # LoadTrace adopted the shared view instead of copying it:
            # the array's memory is the segment, not a private buffer.
            assert attached.values.base is not None
        finally:
            release_segment(handle)

    def test_attach_is_memoised_per_segment(self, trace):
        handle = share_trace(trace)
        try:
            first = attach_trace(handle)
            second = attach_trace(handle)
            assert second is first
        finally:
            release_segment(handle)

    def test_handle_is_tiny_and_knows_its_payload(self, trace):
        handle = share_trace(trace)
        try:
            assert isinstance(handle, SharedTraceHandle)
            assert handle.samples == trace.values.size
            assert handle.nbytes == trace.values.nbytes
            assert handle.segment.startswith(SHM_PREFIX)
        finally:
            release_segment(handle)


class TestLifecycle:
    def test_release_removes_the_segment(self, trace):
        handle = share_trace(trace)
        assert any(handle.segment in p for p in _shm_entries())
        release_segment(handle)
        assert not any(handle.segment in p for p in _shm_entries())

    def test_release_is_idempotent(self, trace):
        handle = share_trace(trace)
        release_segment(handle)
        release_segment(handle)  # second release is a no-op
        release_segment(handle.segment)  # by name too

    def test_attach_after_release_raises(self, trace):
        handle = share_trace(trace)
        release_segment(handle)
        with pytest.raises(TraceError, match="no longer exists"):
            attach_trace(handle)

    def test_stats_track_segment_lifecycle(self, trace):
        before = shm_stats()
        handle = share_trace(trace)
        attach_trace(handle)
        mid = shm_stats()
        assert mid["segments_created"] == before["segments_created"] + 1
        assert mid["segments_live"] >= 1
        assert (
            mid["bytes_shared"]
            == before["bytes_shared"] + trace.values.nbytes
        )
        assert mid["attaches"] > before["attaches"]
        release_segment(handle)
        after = shm_stats()
        assert (
            after["segments_unlinked"] == before["segments_unlinked"] + 1
        )


class TestZeroCopyAdoption:
    def test_read_only_float64_is_adopted_without_copy(self):
        arr = np.arange(100, dtype=np.float64)
        arr.flags.writeable = False
        tr = LoadTrace(arr, 1.0, "adopt")
        assert tr.values is arr

    def test_writeable_input_is_still_copied(self):
        arr = np.arange(100, dtype=np.float64)
        tr = LoadTrace(arr, 1.0, "copy")
        assert tr.values is not arr
        # the caller's array must keep its flags: adoption never mutates
        assert arr.flags.writeable
        arr[0] = 123.0
        assert tr.values[0] == 0.0  # genuinely decoupled

    def test_non_contiguous_read_only_view_is_copied(self):
        base = np.arange(200, dtype=np.float64)
        view = base[::2]
        view.flags.writeable = False
        tr = LoadTrace(view, 1.0, "strided")
        assert tr.values.flags.c_contiguous
        assert tr.values is not view
        assert np.array_equal(tr.values, view)
