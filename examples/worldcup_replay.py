#!/usr/bin/env python
"""The paper's headline experiment (Fig. 5), end to end.

Replays the synthetic 1998 World Cup workload against the four scenarios
of Sec. V-C — the two homogeneous upper bounds, the BML pro-active
scheduler and the theoretical lower bound — and prints per-day energies
plus the headline overhead statistics.  Optionally dumps the series as
CSV for plotting.

The four scenarios come straight from the declarative registry
(``paper-upper-global``, ``paper-upper-perday``, ``paper-bml``,
``paper-lower-bound``) with the CLI flags layered on as spec overrides,
and run through :func:`repro.scenarios.run_suite` — optionally fanned out
over worker processes with ``--jobs``.  The summary table is a
:class:`repro.results.SuiteReport` (savings vs the over-provisioned
baseline included), and ``--save DIR`` persists every run into a
:class:`repro.results.RunStore` for later ``repro scenario diff`` /
``repro scenario report`` sessions.

Run: ``python examples/worldcup_replay.py [--days 87] [--jobs 4]
[--csv out/] [--save runs/]``
(87 days take under a minute; use fewer for a quick look).
"""

import argparse
from dataclasses import replace
from pathlib import Path

from repro import scenarios
from repro.analysis.figures import fig5_series
from repro.analysis.metrics import overhead_stats
from repro.analysis.tables import render_suite, render_table, write_csv
from repro.results import RunStore, SuiteReport


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=87)
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument("--window", type=int, default=378)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--csv", type=Path, default=None)
    parser.add_argument("--save", type=Path, default=None)
    args = parser.parse_args(argv)

    specs = []
    for name in scenarios.PAPER_SCENARIOS:
        spec = scenarios.get(name)
        spec = replace(
            spec,
            workload=replace(
                spec.workload, days=args.days, seed=args.seed, pin_days=True
            ),
            scheduler=replace(spec.scheduler, window=args.window),
        )
        specs.append(spec)
    runs = scenarios.run_suite(specs, jobs=args.jobs)
    results = [r.result for r in runs]
    bml = next(r for r in results if r.scenario == "Big-Medium-Little")
    lower = next(r for r in results if r.scenario == "LowerBound Theoretical")
    overhead = overhead_stats(bml.per_day_energy(), lower.per_day_energy())

    report = SuiteReport.from_runs(runs, baseline="paper-upper-global")
    print(
        render_suite(
            report,
            title=f"Fig. 5 scenarios — {args.days} days, window {args.window}s",
        )
    )
    print()

    fig = fig5_series(results, reference=lower)
    days = fig.series["Big-Medium-Little"][0]
    step = max(1, len(days) // 20)
    rows = [
        {
            "day": int(d),
            **{
                name: round(float(series[1][i]), 2)
                for name, series in fig.series.items()
            },
        }
        for i, d in enumerate(days)
        if i % step == 0
    ]
    print(render_table(rows, title="per-day energy (kWh, sampled)"))
    print()
    if len(days) >= 4:
        from repro.analysis.charts import line_chart

        print(line_chart(fig.series, width=70, height=14,
                         x_label="day", y_label="kWh/day"))
        print()
    print("BML vs theoretical lower bound:", overhead.describe())
    print("paper reports:                  avg 32% / min 6.8% / max 161.4%")

    if args.csv:
        args.csv.mkdir(parents=True, exist_ok=True)
        write_csv(args.csv / "fig5_daily_energy.csv", fig.rows())
        write_csv(args.csv / "fig5_summary.csv", report.rows())
        print(f"\nCSV series written to {args.csv}/")
    if args.save:
        store = RunStore(args.save)
        ids = [store.save(record) for record in report.results]
        for run_id in ids:
            print(f"saved {run_id} -> {store.root / run_id}")
        print(
            f"compare any two later: repro scenario diff {ids[0]} {ids[-1]} "
            f"--store {args.save}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
