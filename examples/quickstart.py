#!/usr/bin/env python
"""Quickstart: design a BML infrastructure and replay a bursty day.

Walks the paper's whole pipeline in ~30 lines of API calls:

1. Step 1 profiles (the published Table I numbers);
2. Steps 2-4: filter dominated machines and compute utilization
   thresholds (Taurus and Graphene drop out; thresholds 1 / 10 / 529);
3. Step 5: ideal combinations for a few rates;
4. replay one synthetic day with the pro-active scheduler and compare
   against the theoretical lower bound — both expressed as declarative
   :class:`repro.scenarios.ScenarioSpec` objects and run through the one
   execution path (``repro scenario run`` speaks the same language).

Run: ``python examples/quickstart.py [--days N]``
"""

import argparse

from repro import scenarios
from repro.analysis.tables import render_table
from repro.core import design, table_i_profiles


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2016)
    args = parser.parse_args(argv)

    # Steps 1-4 -----------------------------------------------------------
    infra = design(table_i_profiles())
    print(infra.describe())
    print()

    # Step 5 --------------------------------------------------------------
    rows = []
    for rate in (5, 50, 529, 1400, 4000):
        combo = infra.combination_for(rate)
        rows.append(
            {
                "target rate (req/s)": rate,
                "ideal combination": combo.describe(),
                "power (W)": round(combo.power(rate), 2),
            }
        )
    print(render_table(rows, title="Step 5: ideal BML combinations"))
    print()

    # Online scheduling, declaratively ------------------------------------
    workload = scenarios.WorkloadSpec(
        days=args.days, seed=args.seed, peak_rate=3000.0, pin_days=True
    )
    bml_spec = scenarios.ScenarioSpec(
        name="BML scheduler",
        workload=workload,
        scheduler=scenarios.SchedulerSpec(policy="bml"),
    )
    bound_spec = scenarios.ScenarioSpec(
        name="theoretical lower bound",
        workload=workload,
        scheduler=scenarios.SchedulerSpec(policy="lower-bound"),
    )
    result_run, bound_run = scenarios.run_suite([bml_spec, bound_spec])
    result, bound = result_run.result, bound_run.result

    qos = result_run.qos()
    print(
        render_table(
            [
                {
                    "scenario": r.scenario,
                    "energy (kWh)": round(r.total_energy_kwh, 3),
                    "mean power (W)": round(r.mean_power, 1),
                    "reconfigurations": r.n_reconfigurations,
                }
                for r in (result, bound)
            ],
            title=f"{args.days}-day replay (peak {result_run.trace_peak:.0f} req/s)",
        )
    )
    print(
        f"\nBML vs lower bound: "
        f"+{100 * (result.total_energy / bound.total_energy - 1):.1f}% energy, "
        f"served fraction {qos.served_fraction:.6f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
