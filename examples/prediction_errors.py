#!/usr/bin/env python
"""Future-work study: how prediction errors hurt (paper Sec. VI).

The paper's conclusion: "As future work we will investigate the impact of
load prediction errors on reconfiguration decisions."  This example runs
that investigation on the synthetic workload: the look-ahead-max oracle is
degraded with log-normal noise and systematic bias, and reactive
predictors join for reference.  The two failure modes are visible
immediately: under-prediction drops requests, over-prediction burns Watts.

Run: ``python examples/prediction_errors.py [--days 3]``
"""

import argparse

from repro.analysis.tables import render_table
from repro.core import (
    BMLScheduler,
    EWMAPredictor,
    LookAheadMaxPredictor,
    NoisyPredictor,
    TrailingMaxPredictor,
    design,
    table_i_profiles,
)
from repro.sim import execute_plan
from repro.workload import synthesize


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    infra = design(table_i_profiles())
    trace = synthesize(n_days=args.days, seed=args.seed)
    oracle = LookAheadMaxPredictor(378)

    predictors = [
        oracle,
        NoisyPredictor(base=oracle, sigma=0.05, seed=1),
        NoisyPredictor(base=oracle, sigma=0.15, seed=1),
        NoisyPredictor(base=oracle, sigma=0.15, bias=0.85, seed=1),
        NoisyPredictor(base=oracle, sigma=0.15, bias=1.25, seed=1),
        TrailingMaxPredictor(378),
        EWMAPredictor(alpha=0.005, headroom=1.3),
    ]

    rows = []
    baseline_energy = None
    for pred in predictors:
        plan = BMLScheduler(infra, predictor=pred).plan(trace)
        res = execute_plan(plan, trace, pred.name)
        qos = res.qos(trace)
        if baseline_energy is None:
            baseline_energy = res.total_energy
        rows.append(
            {
                "predictor": pred.name,
                "energy (kWh)": round(res.total_energy_kwh, 2),
                "vs oracle": f"{100 * (res.total_energy / baseline_energy - 1):+.1f}%",
                "reconfigs": res.n_reconfigurations,
                "unserved (req)": round(qos.unserved_demand, 0),
                "violation (s)": qos.violation_seconds,
            }
        )

    print(
        render_table(
            rows,
            title=f"prediction error impact — {args.days} days, "
            f"peak {trace.peak:.0f} req/s",
        )
    )
    print(
        "\nreading guide: noise inflates the provisioned capacity "
        "(energy up); negative bias starves it (unserved demand up); "
        "reactive predictors lag every rising edge."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
