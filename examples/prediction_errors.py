#!/usr/bin/env python
"""Future-work study: how prediction errors hurt (paper Sec. VI).

The paper's conclusion: "As future work we will investigate the impact of
load prediction errors on reconfiguration decisions."  This example runs
that investigation on the synthetic workload: the look-ahead-max oracle is
degraded with log-normal noise and systematic bias, and reactive
predictors join for reference.  The two failure modes are visible
immediately: under-prediction drops requests, over-prediction burns Watts.

Each predictor variant is one declarative scenario — the same
:class:`repro.scenarios.SchedulerSpec` knobs (``noise_sigma``,
``noise_bias``, ``predictor``) the registry's ``prediction-error``
scenarios use — swept through :func:`repro.scenarios.run_suite`.

Run: ``python examples/prediction_errors.py [--days 3]``
"""

import argparse

from repro import scenarios
from repro.analysis.tables import render_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    workload = scenarios.WorkloadSpec(
        days=args.days, seed=args.seed, pin_days=True
    )
    sweeps = [
        scenarios.SchedulerSpec(),  # the paper's oracle
        scenarios.SchedulerSpec(noise_sigma=0.05, noise_seed=1),
        scenarios.SchedulerSpec(noise_sigma=0.15, noise_seed=1),
        scenarios.SchedulerSpec(noise_sigma=0.15, noise_bias=0.85, noise_seed=1),
        scenarios.SchedulerSpec(noise_sigma=0.15, noise_bias=1.25, noise_seed=1),
        scenarios.SchedulerSpec(predictor="trailing-max"),
        scenarios.SchedulerSpec(predictor="ewma", alpha=0.005, headroom=1.3),
    ]
    specs = [
        scenarios.ScenarioSpec(
            name=sched.build_predictor().name,
            workload=workload,
            scheduler=sched,
            tags=("prediction-error",),
        )
        for sched in sweeps
    ]
    runs = scenarios.run_suite(specs, jobs=args.jobs)

    rows = []
    baseline_energy = runs[0].result.total_energy
    for run in runs:
        qos = run.qos()
        res = run.result
        rows.append(
            {
                "predictor": run.name,
                "energy (kWh)": round(res.total_energy_kwh, 2),
                "vs oracle": f"{100 * (res.total_energy / baseline_energy - 1):+.1f}%",
                "reconfigs": res.n_reconfigurations,
                "unserved (req)": round(qos.unserved_demand, 0),
                "violation (s)": qos.violation_seconds,
            }
        )

    print(
        render_table(
            rows,
            title=f"prediction error impact — {args.days} days, "
            f"peak {runs[0].trace_peak:.0f} req/s",
        )
    )
    print(
        "\nreading guide: noise inflates the provisioned capacity "
        "(energy up); negative bias starves it (unserved demand up); "
        "reactive predictors lag every rising edge."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
