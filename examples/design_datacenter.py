#!/usr/bin/env python
"""Design a BML data center for *your* machine catalogue.

Shows the methodology on hardware the paper never saw: a custom catalogue
of six machine types is profiled with the simulated campaign (Siege ramp
plus wattmeter transients, exactly like Table I was produced), then the
five steps select the BML candidates and compute crossing points.

The catalogue deliberately contains a dominated server ("legacy-xeon",
slower *and* hungrier than "epyc") and a mid-range machine that never
crosses anything ("edge-box") so both elimination rules fire.

Run: ``python examples/design_datacenter.py``
"""

import argparse

from repro.analysis.tables import render_table
from repro.core import design
from repro.profiling import HardwareModel, ProfilingCampaign

CATALOGUE = [
    # name            cores  core rate  idle    max     Ont    OnE      Offt  OffE
    ("epyc",            32,  90_000.0,  95.0,  290.0,  170.0, 28_000.0, 12.0, 900.0),
    ("legacy-xeon",     16,  55_000.0, 130.0,  310.0,  200.0, 30_000.0, 15.0, 1200.0),
    ("midrange",         8,  40_000.0,  38.0,  110.0,   90.0,  6_500.0, 10.0, 450.0),
    ("edge-box",         4,  30_000.0,  30.0,   75.0,   45.0,  2_000.0,  8.0, 200.0),
    ("arm-blade",        8,   9_000.0,   6.0,   16.0,   20.0,    180.0, 10.0,  70.0),
    ("microcontroller",  2,   2_200.0,   1.2,    2.8,    8.0,     14.0,  5.0,   9.0),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--noise", type=float, default=0.05)
    args = parser.parse_args(argv)

    machines = [
        HardwareModel(
            name=n, cores=c, core_work_rate=r, idle_power=i, max_power=m,
            on_time=ont, on_energy=one, off_time=offt, off_energy=offe,
        )
        for n, c, r, i, m, ont, one, offt, offe in CATALOGUE
    ]

    print("Step 1: profiling campaign (simulated Siege + wattmeter)")
    campaign = ProfilingCampaign(wattmeter_noise=args.noise)
    reports = campaign.run(machines)
    print(
        render_table(
            [r.as_table_row() for r in reports],
            title="measured profiles",
        )
    )
    print()

    infra = design([r.profile for r in reports])
    print("Steps 2-4: candidate selection and thresholds")
    print(infra.describe())
    print()

    rows = []
    for name in infra.names:
        rows.append(
            {
                "architecture": name,
                "role": infra.roles[name],
                "step 3 threshold": infra.step3_thresholds[name],
                "step 4 threshold": infra.thresholds[name],
            }
        )
    print(render_table(rows, title="crossing points (Fig. 2 analogue)"))
    print()

    print("Step 5: combinations across the service's operating range")
    max_rate = infra.big.max_perf * 1.5
    rows = []
    rate = 1.0
    while rate <= max_rate:
        combo = infra.combination_for(rate)
        rows.append(
            {
                "rate": int(rate),
                "combination": combo.describe(),
                "power (W)": round(combo.power(rate), 1),
                "W per unit": round(combo.power(rate) / rate, 3),
            }
        )
        rate *= 2.2
    print(render_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
