#!/usr/bin/env python
"""Machine-level view: the event-driven simulator under the hood.

The fast vectorised replay answers "how much energy"; this example runs
the *event-driven* reference simulator instead, where every machine is a
finite-state machine, every boot/shutdown is a scheduled event, every
instance migration is explicit, and a per-machine wattmeter ledger
accounts the energy.  It prints the machine fleet's state counters, the
per-machine energy breakdown, and cross-checks the total against the fast
path (they agree to machine precision).

Run: ``python examples/machine_level_replay.py [--hours 6]``
"""

import argparse

import numpy as np

from repro import scenarios
from repro.analysis.tables import render_table
from repro.core import BMLScheduler, design, table_i_profiles
from repro.sim.loop import EventDrivenReplay
from repro.workload import WorldCupSynthesizer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    infra = design(table_i_profiles())
    day = WorldCupSynthesizer(n_days=1, seed=args.seed, peak_rate=2500).build()
    trace = day[: args.hours * 3600]

    # fast path: a declarative scenario run on the sliced trace ---------
    spec = scenarios.ScenarioSpec(
        name="vectorised fast path",
        scheduler=scenarios.SchedulerSpec(policy="bml"),
    )
    fast = scenarios.run_scenario(spec, trace=trace, infra=infra).result
    predictor = spec.scheduler.build_predictor()

    # event-driven path: same table/predictor, explicit machines --------
    outcome = BMLScheduler(infra, predictor=predictor).plan_detailed(trace)
    replay = EventDrivenReplay(outcome.table, trace, predictor=predictor)
    slow = replay.run()

    print(
        render_table(
            [
                {
                    "path": r.scenario,
                    "energy (kWh)": round(r.total_energy_kwh, 6),
                    "reconfigs": r.n_reconfigurations,
                }
                for r in (fast, slow)
            ],
            title=f"{args.hours}h replay — two independent implementations",
        )
    )
    agree = np.allclose(fast.power, slow.power, atol=1e-9)
    print(f"per-second power series identical: {agree}\n")

    rows = [
        {
            "architecture": arch,
            "boots": replay.stats.boots.get(arch, 0),
            "shutdowns": replay.stats.shutdowns.get(arch, 0),
            "machines instantiated": len(replay.cluster.machines(arch)),
        }
        for arch in infra.names
    ]
    print(render_table(rows, title="machine fleet activity"))
    print(f"instance migrations: {replay.stats.migrations}")
    print(f"peak machines simultaneously ON: {replay.stats.peak_machines_on}\n")

    ledger = [
        {
            "machine": m.machine_id,
            "state now": m.state.value,
            "boots": m.boots,
            "energy (Wh)": round(replay.meter.energy_of(m.machine_id) / 3600, 2),
        }
        for m in sorted(
            replay.cluster.machines(),
            key=lambda m: -replay.meter.energy_of(m.machine_id),
        )[:12]
    ]
    print(render_table(ledger, title="per-machine energy ledger (top 12)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
