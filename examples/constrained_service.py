#!/usr/bin/env python
"""Operating a *constrained* service on an *existing* data center.

The paper's evaluation assumes a malleable, stateless application and
unlimited machines of each type.  Real deployments have neither; this
example drives the extensions that lift both assumptions:

1. **Application constraints** (Sec. III): the service must keep at least
   2 instances (redundancy) and cannot shard beyond 6 — combinations are
   recomputed under node bounds;
2. **Bounded inventory** (Sec. IV-A's "minor changes"): the data center
   owns finite machines; when the peak exceeds what it can host the
   shortfall is measured, not hidden;
3. **Transition-aware decisions** (Sec. VI future work): switching
   overheads are weighed against staying on the current machines.

Every variant is a declarative :class:`repro.scenarios.ScenarioSpec`
(the registry ships the same axes as ``constrained-redundant``,
``inventory-small-dc`` and ``transition-aware-week``), so the comparison
is one :func:`repro.scenarios.run_suite` call.

Run: ``python examples/constrained_service.py [--days 2]``
"""

import argparse

from repro import scenarios
from repro.analysis.charts import sparkline
from repro.analysis.tables import render_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    workload = scenarios.WorkloadSpec(
        days=args.days, seed=args.seed, pin_days=True
    )
    variants = {
        "baseline (paper assumptions)": scenarios.SchedulerSpec(),
        "redundant service (2..6 instances)": scenarios.SchedulerSpec(
            min_instances=2, max_instances=6
        ),
        "existing DC (2 Big, 20 Medium, 10 Little)": scenarios.SchedulerSpec(
            inventory=(("chromebook", 20), ("paravance", 2), ("raspberry", 10)),
        ),
        "transition-aware policy": scenarios.SchedulerSpec(
            policy="transition-aware"
        ),
    }
    specs = [
        scenarios.ScenarioSpec(name=label, workload=workload, scheduler=sched)
        for label, sched in variants.items()
    ]
    trace = workload.build()  # built once, shared by every scenario
    runs = scenarios.run_suite(specs, jobs=args.jobs, trace=trace)

    print(f"workload: {args.days} days, peak {trace.peak:.0f} req/s")
    print("load    " + sparkline(trace.values, width=64))
    print()

    rows = []
    for run in runs:
        res = run.result
        qos = run.qos()
        rows.append(
            {
                "scenario": run.name,
                "energy (kWh)": round(res.total_energy_kwh, 3),
                "reconfigs": res.n_reconfigurations,
                "switch (kWh)": round(res.switch_energy / 3.6e6, 3),
                "served %": round(100 * qos.served_fraction, 4),
                "max nodes": res.meta.get("max_nodes", 0),
            }
        )
    print(render_table(rows, title="constrained operation"))
    print(
        "\nreading guide: redundancy floors pay idle Watts for availability;"
        "\na too-small inventory shows up as served % < 100, never silently;"
        "\nthe transition-aware policy trims switching energy at equal QoS."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
