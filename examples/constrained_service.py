#!/usr/bin/env python
"""Operating a *constrained* service on an *existing* data center.

The paper's evaluation assumes a malleable, stateless application and
unlimited machines of each type.  Real deployments have neither; this
example drives the extensions that lift both assumptions:

1. **Application constraints** (Sec. III): the service must keep at least
   2 instances (redundancy) and cannot shard beyond 6 — combinations are
   recomputed under node bounds;
2. **Bounded inventory** (Sec. IV-A's "minor changes"): the data center
   owns finite machines; when the peak exceeds what it can host the
   shortfall is measured, not hidden;
3. **Transition-aware decisions** (Sec. VI future work): switching
   overheads are weighed against staying on the current machines.

Run: ``python examples/constrained_service.py [--days 2]``
"""

import argparse

from repro.analysis.charts import sparkline
from repro.analysis.tables import render_table
from repro.core import BMLScheduler, TransitionAwareScheduler, design, table_i_profiles
from repro.sim import execute_plan
from repro.sim.application import ApplicationSpec
from repro.workload import synthesize


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    infra = design(table_i_profiles())
    trace = synthesize(n_days=args.days, seed=args.seed)
    print(f"workload: {args.days} days, peak {trace.peak:.0f} req/s")
    print("load    " + sparkline(trace.values, width=64))
    print()

    scenarios = {
        "baseline (paper assumptions)": BMLScheduler(infra),
        "redundant service (2..6 instances)": BMLScheduler(
            infra, app_spec=ApplicationSpec(min_instances=2, max_instances=6)
        ),
        "existing DC (2 Big, 20 Medium, 10 Little)": BMLScheduler(
            infra,
            inventory={"paravance": 2, "chromebook": 20, "raspberry": 10},
        ),
        "transition-aware policy": TransitionAwareScheduler(infra),
    }

    rows = []
    for label, scheduler in scenarios.items():
        plan = scheduler.plan(trace)
        res = execute_plan(plan, trace, label)
        qos = res.qos(trace)
        rows.append(
            {
                "scenario": label,
                "energy (kWh)": round(res.total_energy_kwh, 3),
                "reconfigs": res.n_reconfigurations,
                "switch (kWh)": round(res.switch_energy / 3.6e6, 3),
                "served %": round(100 * qos.served_fraction, 4),
                "max nodes": max(
                    (seg.serving.total_nodes for seg in plan.segments),
                    default=0,
                ),
            }
        )
    print(render_table(rows, title="constrained operation"))
    print(
        "\nreading guide: redundancy floors pay idle Watts for availability;"
        "\na too-small inventory shows up as served % < 100, never silently;"
        "\nthe transition-aware policy trims switching energy at equal QoS."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
